package workload

import (
	"strings"
	"testing"

	"marlin/internal/sim"
)

func TestParseSpecRoundTrip(t *testing.T) {
	specs := []string{
		"square:period=10ms,duty=0.2,peak=40G,base=1G",
		"saw:period=10ms,peak=40G,base=1G",
		"mmpp:rates=1G|40G,dwell=1ms|250us,seed=7",
		"lognormal:rate=5G,sigma=1.5",
		"incast:period=5ms,fanin=8,victim=4,size=150",
		"flood:peak=20G,victim=0,period=4ms,duty=0.25",
		"flood:peak=20G,victim=0",
		"flood:peak=20G,victim=0,ect=not",
		"flood:peak=20G,victim=0,period=4ms,duty=0.25,ect=ect1",
		"square:period=1ms,duty=0.5,peak=10G,base=0bps,dist=datamining,victim=2",
		"incast:period=5ms,fanin=3,victim=1,size=100; flood:peak=20G,victim=1",
	}
	for _, src := range specs {
		plan, err := ParseSpec(src)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", src, err)
		}
		again, err := ParseSpec(plan.String())
		if err != nil {
			t.Fatalf("re-parse of %q (rendered %q): %v", src, plan.String(), err)
		}
		if got := again.String(); got != plan.String() {
			t.Errorf("round trip drift: %q -> %q", plan.String(), got)
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []string{
		"",
		";;",
		"square",
		"square:",
		"bogus:period=1ms",
		"square:period=1ms",                   // missing peak
		"square:period=0ms,duty=0.2,peak=40G", // zero period
		"square:period=1ms,duty=0,peak=40G",   // duty out of range
		"square:period=1ms,duty=1.5,peak=40G", // duty out of range
		"square:period=1ms,duty=0.2,peak=40G,base=80G",      // base above peak
		"square:period=1ms,duty=0.2,peak=xG",                // bad rate
		"square:period=1ms,duty=x,peak=40G",                 // bad float
		"square:period=xs,duty=0.2,peak=40G",                // bad duration
		"square:period=1ms,duty=0.2,peak=40G,frob=1",        // unknown key
		"square:period=1ms,period=2ms,duty=0.2,peak=40G",    // duplicate key
		"square:period=1ms,duty=0.2,peak=40G,dist=zipf",     // unknown dist
		"square:period=1ms,duty=0.2,peak=40G,victim=-1",     // bad victim
		"saw:period=1ms,peak=40G,base=40G",                  // base must be < peak
		"saw:peak=40G",                                      // missing period
		"mmpp:rates=1G,dwell=1ms",                           // one state
		"mmpp:rates=1G|40G,dwell=1ms",                       // dwell count mismatch
		"mmpp:rates=1G|40G,dwell=1ms|0s",                    // zero dwell
		"flood:peak=20G,victim=0,ect=ce",                    // unknown codepoint
		"mmpp:rates=0|0bps,dwell=1ms|1ms",                   // all states idle
		"mmpp:rates=1G|40G,dwell=1ms|2ms,seed=x",            // bad seed
		"lognormal:rate=5G",                                 // missing sigma
		"lognormal:rate=5G,sigma=0",                         // sigma out of range
		"lognormal:rate=5G,sigma=9",                         // sigma out of range
		"lognormal:rate=0bps,sigma=1",                       // zero rate
		"incast:period=5ms,fanin=0,victim=0,size=10",        // zero fanin
		"incast:period=5ms,fanin=2,victim=0,size=0",         // zero size
		"incast:period=5ms,fanin=2,victim=-1,size=10",       // bad victim
		"incast:period=5ms,fanin=2,victim=0,size=10,prob=1", // unknown key
		"flood:victim=0",                                    // missing peak
		"flood:peak=20G,victim=0,duty=0.5",                  // duty without period
		"flood:peak=20G,victim=0,period=1ms",                // period without duty
		"flood:peak=20G,victim=0,period=1ms,duty=2",         // duty out of range
	}
	for _, src := range cases {
		if _, err := ParseSpec(src); err == nil {
			t.Errorf("ParseSpec(%q) accepted", src)
		}
	}
}

func TestSquareEnvelope(t *testing.T) {
	p := &Square{Period: sim.Millisecond, Duty: 0.25, Peak: 40 * sim.Gbps, Base: sim.Gbps}
	for _, tc := range []struct {
		at   sim.Duration
		want sim.Rate
	}{
		{0, 40 * sim.Gbps},
		{249 * sim.Microsecond, 40 * sim.Gbps},
		{250 * sim.Microsecond, sim.Gbps},
		{999 * sim.Microsecond, sim.Gbps},
		{sim.Millisecond, 40 * sim.Gbps},
		{1250 * sim.Microsecond, sim.Gbps},
	} {
		if got := p.RateAt(sim.Time(tc.at)); got != tc.want {
			t.Errorf("RateAt(%v) = %v, want %v", tc.at, got, tc.want)
		}
	}
}

func TestSawEnvelope(t *testing.T) {
	p := &Saw{Period: sim.Millisecond, Peak: 41 * sim.Gbps, Base: sim.Gbps}
	if got := p.RateAt(0); got != sim.Gbps {
		t.Errorf("RateAt(0) = %v, want base", got)
	}
	if got := p.RateAt(sim.Time(500 * sim.Microsecond)); got != 21*sim.Gbps {
		t.Errorf("RateAt(mid) = %v, want 21Gbps", got)
	}
	// Ramp resets each period.
	if got := p.RateAt(sim.Time(sim.Millisecond)); got != sim.Gbps {
		t.Errorf("RateAt(period) = %v, want base", got)
	}
}

// TestMMPPSeedPurity is the regression test that MMPP state transitions
// are a pure function of the seed: two instances with the same seed agree
// at every instant even when queried in different orders, and a different
// seed produces a different trajectory.
func TestMMPPSeedPurity(t *testing.T) {
	mk := func(seed uint64) *MMPP {
		return &MMPP{
			Rates:  []sim.Rate{sim.Gbps, 40 * sim.Gbps, 10 * sim.Gbps},
			Dwells: []sim.Duration{sim.Millisecond, 250 * sim.Microsecond, 500 * sim.Microsecond},
			Seed:   seed,
		}
	}
	a, b := mk(7), mk(7)
	const n = 2000
	step := 17 * sim.Microsecond
	// a queried forward, b queried backward: memoization must not leak
	// query order into the trajectory.
	got := make([]sim.Rate, n)
	for i := 0; i < n; i++ {
		got[i] = a.RateAt(sim.Time(sim.Duration(i) * step))
	}
	for i := n - 1; i >= 0; i-- {
		if r := b.RateAt(sim.Time(sim.Duration(i) * step)); r != got[i] {
			t.Fatalf("same seed diverged at step %d: %v vs %v", i, got[i], r)
		}
	}
	// Re-querying is stable.
	for i := 0; i < n; i += 97 {
		if r := a.RateAt(sim.Time(sim.Duration(i) * step)); r != got[i] {
			t.Fatalf("re-query drifted at step %d", i)
		}
	}
	// A different seed must actually modulate differently.
	c := mk(8)
	same := 0
	for i := 0; i < n; i++ {
		if c.RateAt(sim.Time(sim.Duration(i)*step)) == got[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("seed 8 produced seed 7's trajectory")
	}
	// And every state must eventually be visited.
	seen := map[sim.Rate]bool{}
	for _, r := range got {
		seen[r] = true
	}
	if len(seen) != 3 {
		t.Fatalf("only %d of 3 states visited over %v", len(seen), sim.Duration(n)*step)
	}
}

func TestLognormalGapMean(t *testing.T) {
	p := &Lognormal{Rate: 5 * sim.Gbps, Sigma: 1.5}
	rng := sim.NewRand(3)
	mean := sim.Millisecond
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(p.nextGap(rng, mean))
	}
	got := sum / n / float64(sim.Millisecond)
	if got < 0.93 || got > 1.07 {
		t.Fatalf("empirical mean gap = %.3fms, want ~1ms", got)
	}
}

func TestPlanVictim(t *testing.T) {
	plan, err := ParseSpec("square:period=1ms,duty=0.5,peak=10G; flood:peak=20G,victim=3")
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := plan.Victim(); !ok || v != 3 {
		t.Fatalf("Victim() = %d, %v; want 3, true", v, ok)
	}
	plan, err = ParseSpec("square:period=1ms,duty=0.5,peak=10G")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plan.Victim(); ok {
		t.Fatal("victimless plan reported a victim")
	}
	if !strings.Contains(plan.String(), "square:") {
		t.Fatalf("plan string %q", plan.String())
	}
}
