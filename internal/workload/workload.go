// Package workload generates the test traffic mixes the paper evaluates
// with: the WebSearch flow-size distribution (Alizadeh et al., used by
// §7.4 and §7.5) and flow-arrival processes, including the paper's
// closed-loop policy where "a new flow is initiated immediately after the
// completion of the previous one".
package workload

import (
	"fmt"
	"math"
	"sort"

	"marlin/internal/sim"
)

// SizeDist is an empirical flow-size distribution sampled by inverse CDF
// with log-linear interpolation between knots. Sizes are in packets (MTU
// units), the granularity Marlin schedules at.
type SizeDist struct {
	name  string
	sizes []float64 // packets, ascending
	cdf   []float64 // matching cumulative probabilities, ending at 1
}

// NewSizeDist builds a distribution from (size, cdf) knots. The cdf must
// start at 0 and end at 1, both slices must ascend, and every knot must be
// finite.
func NewSizeDist(name string, sizes, cdf []float64) (*SizeDist, error) {
	if len(sizes) == 0 || len(sizes) != len(cdf) {
		return nil, fmt.Errorf("workload: need matching non-empty knots")
	}
	for i := range sizes {
		if math.IsNaN(sizes[i]) || math.IsInf(sizes[i], 0) ||
			math.IsNaN(cdf[i]) || math.IsInf(cdf[i], 0) {
			return nil, fmt.Errorf("workload: non-finite knot at index %d", i)
		}
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] || cdf[i] < cdf[i-1] {
			return nil, fmt.Errorf("workload: knots must ascend at index %d", i)
		}
	}
	if cdf[0] != 0 {
		return nil, fmt.Errorf("workload: cdf must start at 0, got %v", cdf[0])
	}
	if cdf[len(cdf)-1] != 1 {
		return nil, fmt.Errorf("workload: final cdf must be 1, got %v", cdf[len(cdf)-1])
	}
	return &SizeDist{name: name, sizes: sizes, cdf: cdf}, nil
}

// WebSearch returns the web-search flow-size distribution from the DCTCP
// workload family (flow sizes in packets), the model behind Figures 9 and
// 10. It is heavy-tailed: half the flows are under ~40 packets while the
// top 3% exceed 6,667 packets.
func WebSearch() *SizeDist {
	d, err := NewSizeDist("websearch",
		[]float64{1, 6, 13, 19, 33, 53, 133, 667, 1333, 3333, 6667, 20000},
		[]float64{0, 0.15, 0.2, 0.3, 0.4, 0.53, 0.6, 0.7, 0.8, 0.9, 0.97, 1})
	if err != nil {
		panic(err) // static table; cannot fail
	}
	return d
}

// DataMining returns the data-mining flow-size distribution from the same
// workload family (pFabric's companion to WebSearch): even heavier-tailed,
// with half the flows a single packet and the top percent reaching
// hundreds of thousands of packets.
func DataMining() *SizeDist {
	// The leading (0.5, 0) knot anchors the cdf at 0; every draw that
	// lands on the [0.5, 1] segment still rounds up to the distribution's
	// one-packet mode, so sampling is unchanged from the historical table
	// that began at cdf 0.5.
	d, err := NewSizeDist("datamining",
		[]float64{0.5, 1, 2, 3, 7, 267, 2107, 66667, 666667},
		[]float64{0, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99, 1})
	if err != nil {
		panic(err) // static table; cannot fail
	}
	return d
}

// Uniform returns a uniform distribution over [lo, hi] packets.
func Uniform(lo, hi uint32) *SizeDist {
	d, err := NewSizeDist(fmt.Sprintf("uniform[%d,%d]", lo, hi),
		[]float64{float64(lo), float64(hi)}, []float64{0, 1})
	if err != nil {
		panic(err)
	}
	return d
}

// Fixed returns a degenerate distribution of constant size.
func Fixed(pkts uint32) *SizeDist {
	return &SizeDist{
		name:  fmt.Sprintf("fixed[%d]", pkts),
		sizes: []float64{float64(pkts)},
		cdf:   []float64{1},
	}
}

// Name returns the distribution's label.
func (d *SizeDist) Name() string { return d.name }

// Sample draws one flow size in packets (at least 1).
func (d *SizeDist) Sample(rng *sim.Rand) uint32 {
	u := rng.Float64()
	i := sort.SearchFloat64s(d.cdf, u)
	if i == 0 {
		return atLeast1(d.sizes[0])
	}
	if i >= len(d.cdf) {
		return atLeast1(d.sizes[len(d.sizes)-1])
	}
	// Linear interpolation between knots i-1 and i.
	c0, c1 := d.cdf[i-1], d.cdf[i]
	s0, s1 := d.sizes[i-1], d.sizes[i]
	if c1 == c0 {
		return atLeast1(s1)
	}
	frac := (u - c0) / (c1 - c0)
	return atLeast1(s0 + frac*(s1-s0))
}

// Mean returns the distribution's analytic mean in packets (trapezoidal
// over the knots).
func (d *SizeDist) Mean() float64 {
	if len(d.sizes) == 1 {
		return d.sizes[0]
	}
	var mean float64
	for i := 1; i < len(d.sizes); i++ {
		w := d.cdf[i] - d.cdf[i-1]
		mean += w * (d.sizes[i] + d.sizes[i-1]) / 2
	}
	return mean
}

func atLeast1(v float64) uint32 {
	if v < 1 {
		return 1
	}
	return uint32(v + 0.5)
}
