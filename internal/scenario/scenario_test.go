package scenario

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Scenario {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustRun(t *testing.T, src string) *Report {
	t.Helper()
	rep, err := mustParse(t, src).Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"empty", "", "no run"},
		{"unknown directive", "frobnicate\nrun 1ms", "unknown directive"},
		{"bad set", "set bogus 1\nrun 1ms", "unknown setting"},
		{"set after run", "run 1ms\nset algo reno", "set after run"},
		{"bad duration", "run 1parsec", "bad duration"},
		{"bad action", "at 0ms explode 1\nrun 1ms", "unknown action"},
		{"start missing rx", "at 0ms start 0 tx 0\nrun 1ms", "expected"},
		{"bad expect op", "run 1ms\nexpect jain ~ 1", "bad operator"},
		{"bad expect value", "run 1ms\nexpect jain >= fast", "bad value"},
		{"bad mark range", "at 0ms mark flow 0 rx 1 psn 9..2\nrun 1ms", "bad"},
		{"trailing tokens", "at 0ms start 0 tx 0 rx 1 size 5 extra 9\nrun 1ms", "trailing"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.want)
		}
	}
}

func TestScenarioLineNumbersInErrors(t *testing.T) {
	_, err := Parse("set algo dctcp\n\n# comment\nat 0ms explode\nrun 1ms")
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("err = %v, want line 4", err)
	}
}

func TestScenarioSingleFlow(t *testing.T) {
	rep := mustRun(t, `
set algo dctcp
set ports 2
at 0ms start 0 tx 0 rx 1
run 2ms
expect false_losses == 0
expect total_gbps >= 80
expect flow_gbps 0 >= 80
expect rtt_ewma_us <= 50
expect rtt_p50_us <= 50
`)
	if !rep.Passed() {
		t.Fatalf("scenario failed:\n%s", rep.Summary())
	}
	if len(rep.Checks) != 5 {
		t.Fatalf("checks = %d", len(rep.Checks))
	}
}

func TestScenarioFanInWithFaults(t *testing.T) {
	rep := mustRun(t, `
# 2:1 fan-in with a scripted loss and an ECN burst
set algo dctcp
set ports 3
set ecn 65
set seed 9
at 0ms start 0 tx 0 rx 2
at 0ms start 1 tx 1 rx 2
at 0ms drop flow 0 rx 2 psn 500
at 0ms mark flow 1 rx 2 psn 100..150
run 4ms
expect false_losses == 0
expect rtx >= 1
expect jain >= 0.9
expect total_gbps >= 80
expect total_gbps <= 102
`)
	if !rep.Passed() {
		t.Fatalf("scenario failed:\n%s", rep.Summary())
	}
}

func TestScenarioStagedRunsAndStop(t *testing.T) {
	rep := mustRun(t, `
set algo dctcp
set ports 3
set ecn 65
at 0ms start 0 tx 0 rx 2
at 0ms start 1 tx 1 rx 2
run 3ms
at 3ms stop 1
run 3ms
expect flow_gbps 0 >= 60
`)
	if !rep.Passed() {
		t.Fatalf("scenario failed:\n%s", rep.Summary())
	}
	if rep.Elapsed.Seconds() != 0.006 {
		t.Fatalf("elapsed = %v", rep.Elapsed)
	}
}

func TestScenarioFiniteFlowsComplete(t *testing.T) {
	rep := mustRun(t, `
set algo reno
set ports 2
at 0ms start 0 tx 0 rx 1 size 100
run 10ms
expect completions == 1
expect fct_p50_us <= 1000
`)
	if !rep.Passed() {
		t.Fatalf("scenario failed:\n%s", rep.Summary())
	}
}

func TestScenarioFailureReported(t *testing.T) {
	rep := mustRun(t, `
set algo dctcp
set ports 2
at 0ms start 0 tx 0 rx 1
run 1ms
expect total_gbps >= 5000
`)
	if rep.Passed() {
		t.Fatal("impossible expectation passed")
	}
	fails := rep.Failures()
	if len(fails) != 1 || !strings.Contains(fails[0].Text, "5000") {
		t.Fatalf("failures = %+v", fails)
	}
	if !strings.Contains(rep.Summary(), "FAIL") {
		t.Fatal("summary missing FAIL")
	}
}

func TestScenarioSettingsApply(t *testing.T) {
	s := mustParse(t, `
set algo dcqcn
set ports 4
set mtu 1500
set ecn 20
set queue 1048576
set seed 42
set dcqcnscale 30
set receiver roce
set pfc on
set int on
set fpgarecv off
run 1ms
`)
	if s.spec.Algorithm != "dcqcn" || s.spec.Ports != 4 || s.spec.MTU != 1500 ||
		s.spec.ECNThresholdPkts != 20 || s.spec.NetQueueBytes != 1048576 ||
		s.spec.Seed != 42 || s.spec.DCQCNTimeScale != 30 ||
		s.spec.Receiver != "roce" || !s.spec.EnablePFC || !s.spec.EnableINT ||
		s.spec.ReceiverOnFPGA {
		t.Fatalf("spec = %+v", s.spec)
	}
}

func TestScenarioUnknownMetric(t *testing.T) {
	s := mustParse(t, "set algo reno\nset ports 2\nrun 1ms\nexpect warp_factor >= 9")
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "unknown metric") {
		t.Fatalf("err = %v", err)
	}
}

func TestScenarioLinkFlapRecovery(t *testing.T) {
	// A 2ms blackout mid-flow — longer than the 500us RTO floor: the
	// link holds packets, RTOs fire, and the flow must still finish once
	// the link returns.
	rep := mustRun(t, `
set algo dctcp
set ports 2
at 0ms start 0 tx 0 rx 1 size 30000
at 500us flap rx 1 for 2ms
run 40ms
expect completions == 1
expect false_losses == 0
`)
	if !rep.Passed() {
		t.Fatalf("scenario failed:\n%s", rep.Summary())
	}
	if rep.Snapshot.NIC.Timeouts == 0 {
		t.Fatal("2ms blackout fired no RTOs")
	}
}

func TestScenarioFlapParseErrors(t *testing.T) {
	if _, err := Parse("at 0ms flap rx 1\nrun 1ms"); err == nil {
		t.Fatal("truncated flap parsed")
	}
	if _, err := Parse("at 0ms flap rx x for 1ms\nrun 1ms"); err == nil {
		t.Fatal("bad flap port parsed")
	}
}

func TestJainDeterministicAcrossRuns(t *testing.T) {
	// Regression: the jain metric used to accumulate goodput in map
	// iteration order, so its low float bits varied run to run for the
	// same script and seed. With sorted flow iteration the measured value
	// must be bit-identical on every run.
	const src = `
set algo dctcp
set ports 4
set seed 7
at 0ms start 0 tx 0 rx 3
at 0ms start 1 tx 1 rx 3
at 0ms start 2 tx 2 rx 3
run 3ms
expect jain >= 0.8
`
	var first float64
	for i := 0; i < 10; i++ {
		rep := mustRun(t, src)
		if len(rep.Checks) != 1 {
			t.Fatalf("run %d: checks = %d, want 1", i, len(rep.Checks))
		}
		got := rep.Checks[0].Measured
		if i == 0 {
			first = got
			continue
		}
		if got != first {
			t.Fatalf("run %d: jain = %v, differs from first run %v", i, got, first)
		}
	}
}

func TestScenarioTopologyDirective(t *testing.T) {
	rep := mustRun(t, `
set algo dctcp
set ports 4
set topology leafspine:2x2
at 0ms start 0 tx 0 rx 1 size 100
at 0ms start 1 tx 2 rx 3 size 100
run 20ms
expect completions == 2
expect misroutes == 0
expect false_losses == 0
`)
	if !rep.Passed() {
		t.Fatalf("leaf-spine scenario failed:\n%s", rep.Summary())
	}
	if len(rep.Snapshot.Network) != 4 {
		t.Fatalf("snapshot lists %d switches, want 4", len(rep.Snapshot.Network))
	}
}

func TestScenarioBadTopologyRejected(t *testing.T) {
	s := mustParse(t, "set algo dctcp\nset topology mesh\nrun 1ms")
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "topology") {
		t.Fatalf("bad topology deployed: %v", err)
	}
}

func TestScenarioSetFaultRecovery(t *testing.T) {
	rep := mustRun(t, `
set algo dctcp
set ports 2
set fault linkdown fwd1 at 2ms for 300us
at 0ms start 0 tx 0 rx 1
run 12ms
expect faults_recovered == 1
expect fault_ttr_us > 0
expect fault_ttr_us < 5000
`)
	if !rep.Passed() {
		t.Fatalf("checks failed:\n%s", rep.Summary())
	}
	if len(rep.Snapshot.Faults) != 1 {
		t.Fatalf("snapshot carries %d fault recoveries, want 1", len(rep.Snapshot.Faults))
	}
	if !rep.Snapshot.Faults[0].Recovered {
		t.Fatalf("snapshot recovery = %+v", rep.Snapshot.Faults[0])
	}
}

func TestScenarioSetFaultAccumulatesAndValidates(t *testing.T) {
	s := mustParse(t, `
set fault linkdown fwd0 at 1ms for 200us
set fault nicstall at 2ms for 50us
run 4ms
`)
	want := "linkdown fwd0 at 1ms for 200us; nicstall at 2ms for 50us"
	if s.spec.Faults != want {
		t.Fatalf("accumulated spec = %q, want %q", s.spec.Faults, want)
	}
	bad := []struct{ name, src, want string }{
		{"empty clause", "set fault\nrun 1ms", "set fault needs"},
		{"bad kind", "set fault explode fwd0 at 1ms for 1ms\nrun 1ms", "unknown kind"},
		{"overlap across clauses", "set fault linkdown fwd0 at 1ms for 1ms\nset fault linkdown fwd0 at 1.5ms for 1ms\nrun 3ms", "overlapping"},
		{"fault after run", "run 1ms\nset fault linkdown fwd0 at 1ms for 1ms", "set after run"},
	}
	for _, c := range bad {
		if _, err := Parse(c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.want)
		}
	}
}

func TestScenarioFaultMetricWithoutPlan(t *testing.T) {
	_, err := mustParse(t, "set algo dctcp\nrun 1ms\nexpect fault_ttr_us < 10").Run()
	if err == nil || !strings.Contains(err.Error(), "no fault plan") {
		t.Fatalf("err = %v, want no-fault-plan error", err)
	}
}

func TestScenarioSetPatternOverload(t *testing.T) {
	rep := mustRun(t, `
set algo dctcp
set ports 4
set pattern incast:period=1ms,fanin=8,victim=2,size=200
set pattern flood:peak=40G,victim=2,period=2ms,duty=0.5
at 0ms start 0 tx 0 rx 1
at 0ms start 1 tx 1 rx 3
run 6ms
expect burst_absorption > 0
expect burst_absorption <= 1
expect peak_queue_bytes > 0
expect overload_us >= 0
`)
	if !rep.Passed() {
		t.Fatalf("checks failed:\n%s", rep.Summary())
	}
	if rep.Snapshot.Overload == nil {
		t.Fatal("snapshot missing overload telemetry")
	}
	if rep.Snapshot.Overload.Delivered == 0 {
		t.Fatalf("overload report saw no delivered packets: %+v", rep.Snapshot.Overload)
	}
}

func TestScenarioSetPatternAccumulatesAndValidates(t *testing.T) {
	s := mustParse(t, `
set pattern incast:period=1ms,fanin=4,victim=0,size=50
set pattern flood:peak=20G,victim=0
run 2ms
`)
	want := "incast:period=1ms,fanin=4,victim=0,size=50; flood:peak=20G,victim=0"
	if s.spec.Pattern != want {
		t.Fatalf("accumulated spec = %q, want %q", s.spec.Pattern, want)
	}
	bad := []struct{ name, src, want string }{
		{"empty clause", "set pattern\nrun 1ms", "set pattern needs"},
		{"bad kind", "set pattern tsunami:peak=1G\nrun 1ms", "unknown pattern"},
		{"bad key", "set pattern flood:peak=1G,victim=0,frob=2\nrun 1ms", "unexpected"},
		{"pattern after run", "run 1ms\nset pattern flood:peak=1G,victim=0", "set after run"},
	}
	for _, c := range bad {
		if _, err := Parse(c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.want)
		}
	}
}

func TestScenarioSetAQM(t *testing.T) {
	rep := mustRun(t, `
set algo dctcp
set ports 3
set aqm dualpi2:target=5us,tupdate=25us,step=10us
set seed 9
at 0ms start 0 tx 0 rx 2
at 0ms start 1 tx 1 rx 2
run 2ms
expect ecn_mark_rate > 0
expect sojourn_p99_us > 0
expect sojourn_p99_us < 1000
expect false_losses == 0
`)
	if !rep.Passed() {
		t.Fatalf("AQM scenario failed:\n%s", rep.Summary())
	}
	found := false
	for _, sw := range rep.Snapshot.Network {
		for _, ps := range sw.Ports {
			if ps.AQM != nil && ps.AQM.Discipline == "dualpi2" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("snapshot missing the deployed discipline")
	}
}

func TestScenarioSetAQMValidates(t *testing.T) {
	bad := []struct{ name, src, want string }{
		{"bad discipline", "set aqm tailspin\nrun 1ms", "unknown discipline"},
		{"bad param", "set aqm pie:target=0s\nrun 1ms", "target"},
		{"aqm after run", "run 1ms\nset aqm pi2", "set after run"},
	}
	for _, c := range bad {
		if _, err := Parse(c.src); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want contains %q", c.name, err, c.want)
		}
	}
	// AQM and step-ECN are mutually exclusive marking policies; the clash
	// surfaces when the spec is validated at deploy time.
	s := mustParse(t, "set algo dctcp\nset ecn 65\nset aqm pi2\nrun 1ms")
	if _, err := s.Run(); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("err = %v, want mutual-exclusion error", err)
	}
}

func TestScenarioSojournMetricWithoutAQM(t *testing.T) {
	_, err := mustParse(t, "set algo dctcp\nrun 1ms\nexpect sojourn_p99_us < 10").Run()
	if err == nil || !strings.Contains(err.Error(), "no AQM") {
		t.Fatalf("err = %v, want no-AQM error", err)
	}
}

func TestScenarioOverloadMetricWithoutPlan(t *testing.T) {
	_, err := mustParse(t, "set algo dctcp\nrun 1ms\nexpect burst_absorption > 0").Run()
	if err == nil || !strings.Contains(err.Error(), "no pattern plan") {
		t.Fatalf("err = %v, want no-pattern-plan error", err)
	}
}
