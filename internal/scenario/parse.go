package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"marlin/internal/aqm"
	"marlin/internal/faults"
	"marlin/internal/packet"
	"marlin/internal/sim"
	"marlin/internal/workload"
)

// Parse compiles a scenario script. Errors carry 1-based line numbers.
func Parse(src string) (*Scenario, error) {
	s := &Scenario{}
	s.spec.Seed = 1
	sawRun := false
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		text := strings.TrimSpace(raw)
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		var err error
		switch fields[0] {
		case "set":
			if sawRun {
				err = fmt.Errorf("set after run is not allowed")
			} else if len(fields) >= 2 && fields[1] == "fault" {
				// "set fault KIND ..." takes a variable-length clause, so
				// it bypasses the KEY VALUE form below.
				err = s.parseFault(fields[2:])
			} else if len(fields) >= 2 && fields[1] == "pattern" {
				err = s.parsePattern(fields[2:])
			} else {
				err = s.parseSet(fields[1:])
			}
		case "at":
			err = s.parseAt(line, fields[1:])
		case "run":
			var d sim.Duration
			d, err = parseDur(fields[1:])
			if err == nil {
				sawRun = true
				s.steps = append(s.steps, step{line: line, run: d})
			}
		case "expect":
			var e *expectation
			e, err = parseExpect(strings.Join(fields[1:], " "))
			if err == nil {
				s.steps = append(s.steps, step{line: line, expect: e})
			}
		default:
			err = fmt.Errorf("unknown directive %q", fields[0])
		}
		if err != nil {
			return nil, fmt.Errorf("scenario line %d: %w", line, err)
		}
	}
	if !sawRun {
		return nil, fmt.Errorf("scenario: no run directive")
	}
	return s, nil
}

func (s *Scenario) parseSet(args []string) error {
	if len(args) != 2 {
		return fmt.Errorf("set needs KEY VALUE")
	}
	key, val := args[0], args[1]
	switch key {
	case "algo":
		s.spec.Algorithm = val
	case "ports":
		return setInt(&s.spec.Ports, val)
	case "mtu":
		return setInt(&s.spec.MTU, val)
	case "ecn":
		return setInt(&s.spec.ECNThresholdPkts, val)
	case "queue":
		return setInt(&s.spec.NetQueueBytes, val)
	case "aqm":
		// "set aqm dualpi2:target=1ms,coupling=2" — aqm.ParseSpec syntax;
		// validated here so a typo fails at parse time, not deploy time.
		if _, err := aqm.ParseSpec(val); err != nil {
			return err
		}
		s.spec.AQM = val
	case "seed":
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q", val)
		}
		s.spec.Seed = n
	case "dcqcnscale":
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("bad dcqcnscale %q", val)
		}
		s.spec.DCQCNTimeScale = f
	case "receiver":
		s.spec.Receiver = val
	case "topology":
		s.spec.Topology = val
	case "shards":
		return setInt(&s.spec.Shards, val)
	case "pfc":
		return setBool(&s.spec.EnablePFC, val)
	case "int":
		return setBool(&s.spec.EnableINT, val)
	case "fpgarecv":
		return setBool(&s.spec.ReceiverOnFPGA, val)
	default:
		return fmt.Errorf("unknown setting %q", key)
	}
	return nil
}

// parseFault accumulates one fault clause, e.g.
//
//	set fault linkdown leaf0->spine1 at 2ms for 500us
//	set fault lossburst tx0 at 1ms for 200us prob 0.1 seed 7
//	set fault nicstall at 4ms for 100us
//
// Clauses use faults.ParseSpec syntax; each new clause is validated
// against the ones already set (overlap rules included).
func (s *Scenario) parseFault(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("set fault needs a clause (e.g. linkdown LINK at TIME for DUR)")
	}
	clause := strings.Join(args, " ")
	spec := clause
	if s.spec.Faults != "" {
		spec = s.spec.Faults + "; " + clause
	}
	if _, err := faults.ParseSpec(spec); err != nil {
		return err
	}
	s.spec.Faults = spec
	return nil
}

// parsePattern accumulates one traffic-pattern clause, e.g.
//
//	set pattern incast:period=5ms,fanin=8,victim=1,size=150
//	set pattern flood:peak=20G,victim=1,period=4ms,duty=0.25
//	set pattern square:period=10ms,duty=0.2,peak=40G,base=1G
//
// Clauses use workload.ParseSpec syntax; each new clause is validated
// together with the ones already set.
func (s *Scenario) parsePattern(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("set pattern needs a clause (e.g. incast:period=5ms,fanin=8,victim=1,size=150)")
	}
	clause := strings.Join(args, " ")
	spec := clause
	if s.spec.Pattern != "" {
		spec = s.spec.Pattern + "; " + clause
	}
	if _, err := workload.ParseSpec(spec); err != nil {
		return err
	}
	s.spec.Pattern = spec
	return nil
}

// parseAt handles:
//
//	at D start FLOW tx P rx P [size N]
//	at D stop FLOW
//	at D drop flow FLOW rx P psn N (or psn A..B)
//	at D mark flow FLOW rx P psn A..B
//	at D flap rx P for DURATION
func (s *Scenario) parseAt(line int, args []string) error {
	if len(args) < 2 {
		return fmt.Errorf("at needs a time and an action")
	}
	d, err := parseDur(args[:1])
	if err != nil {
		return err
	}
	a := action{at: d, line: line, kind: args[1]}
	rest := args[2:]
	switch a.kind {
	case "start":
		// FLOW tx P rx P [size N]
		kv, err := keyVals(rest, "start", []string{"", "tx", "rx"}, []string{"size"})
		if err != nil {
			return err
		}
		a.flow = packet.FlowID(kv[""])
		a.tx, a.rx = int(kv["tx"]), int(kv["rx"])
		a.size = uint32(kv["size"])
	case "stop":
		if len(rest) != 1 {
			return fmt.Errorf("stop needs a flow id")
		}
		n, err := strconv.ParseUint(rest[0], 10, 32)
		if err != nil {
			return fmt.Errorf("bad flow id %q", rest[0])
		}
		a.flow = packet.FlowID(n)
	case "drop":
		// flow F rx P psn N  |  flow F rx P psn A..B
		if len(rest) != 6 || rest[0] != "flow" || rest[2] != "rx" || rest[4] != "psn" {
			return fmt.Errorf("drop needs: flow F rx P psn N (or psn A..B)")
		}
		fl, err1 := strconv.ParseUint(rest[1], 10, 32)
		rx, err2 := strconv.Atoi(rest[3])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad drop operands")
		}
		a.flow = packet.FlowID(fl)
		a.rx = rx
		if strings.Contains(rest[5], "..") {
			lo, hi, err := parseRange(rest[5])
			if err != nil {
				return err
			}
			a.psnA, a.psnB = lo, hi
		} else {
			n, err := strconv.ParseUint(rest[5], 10, 32)
			if err != nil {
				return fmt.Errorf("bad psn %q", rest[5])
			}
			a.psnA, a.psnB = uint32(n), uint32(n)
		}
	case "mark":
		// flow F rx P psn A..B
		if len(rest) != 6 || rest[0] != "flow" || rest[2] != "rx" || rest[4] != "psn" {
			return fmt.Errorf("mark needs: flow F rx P psn A..B")
		}
		fl, err1 := strconv.ParseUint(rest[1], 10, 32)
		rx, err2 := strconv.Atoi(rest[3])
		lo, hi, err3 := parseRange(rest[5])
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf("bad mark operands")
		}
		a.flow = packet.FlowID(fl)
		a.rx = rx
		a.psnA, a.psnB = lo, hi
	case "flap":
		// rx P for D
		if len(rest) != 4 || rest[0] != "rx" || rest[2] != "for" {
			return fmt.Errorf("flap needs: rx P for DURATION")
		}
		rx, err1 := strconv.Atoi(rest[1])
		d, err2 := parseDur(rest[3:4])
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad flap operands")
		}
		a.rx = rx
		a.flap = d
	default:
		return fmt.Errorf("unknown action %q", a.kind)
	}
	s.actions = append(s.actions, a)
	return nil
}

// keyVals parses "V k1 V1 k2 V2 ..." where keys[0] == "" means the first
// token is a bare value; optional keys may be omitted.
func keyVals(tokens []string, verb string, keys, optional []string) (map[string]uint64, error) {
	out := make(map[string]uint64)
	i := 0
	for _, k := range keys {
		if k == "" {
			if i >= len(tokens) {
				return nil, fmt.Errorf("%s: missing value", verb)
			}
			v, err := strconv.ParseUint(tokens[i], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q", verb, tokens[i])
			}
			out[k] = v
			i++
			continue
		}
		if i+1 >= len(tokens) || tokens[i] != k {
			return nil, fmt.Errorf("%s: expected %q", verb, k)
		}
		v, err := strconv.ParseUint(tokens[i+1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad %s %q", verb, k, tokens[i+1])
		}
		out[k] = v
		i += 2
	}
	for _, k := range optional {
		if i+1 < len(tokens) && tokens[i] == k {
			v, err := strconv.ParseUint(tokens[i+1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad %s %q", verb, k, tokens[i+1])
			}
			out[k] = v
			i += 2
		}
	}
	if i != len(tokens) {
		return nil, fmt.Errorf("%s: trailing tokens %v", verb, tokens[i:])
	}
	return out, nil
}

func parseRange(s string) (lo, hi uint32, err error) {
	parts := strings.SplitN(s, "..", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("bad range %q", s)
	}
	a, err1 := strconv.ParseUint(parts[0], 10, 32)
	b, err2 := strconv.ParseUint(parts[1], 10, 32)
	if err1 != nil || err2 != nil || b < a {
		return 0, 0, fmt.Errorf("bad range %q", s)
	}
	return uint32(a), uint32(b), nil
}

func parseDur(args []string) (sim.Duration, error) {
	if len(args) != 1 {
		return 0, fmt.Errorf("expected one duration")
	}
	d, err := time.ParseDuration(args[0])
	if err != nil || d < 0 {
		return 0, fmt.Errorf("bad duration %q", args[0])
	}
	return sim.FromStd(d), nil
}

// parseExpect handles "METRIC OP VALUE" and "flow_gbps FLOW OP VALUE".
func parseExpect(text string) (*expectation, error) {
	fields := strings.Fields(text)
	e := &expectation{raw: text}
	switch {
	case len(fields) == 4 && fields[0] == "flow_gbps":
		n, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad flow id %q", fields[1])
		}
		e.metric = "flow_gbps"
		e.flow = packet.FlowID(n)
		e.hasFlo = true
		fields = fields[2:]
	case len(fields) == 3:
		e.metric = fields[0]
		fields = fields[1:]
	default:
		return nil, fmt.Errorf("expect needs METRIC OP VALUE")
	}
	switch fields[0] {
	case "==", "!=", "<", "<=", ">", ">=":
		e.op = fields[0]
	default:
		return nil, fmt.Errorf("bad operator %q", fields[0])
	}
	v, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return nil, fmt.Errorf("bad value %q", fields[1])
	}
	e.value = v
	return e, nil
}

func setInt(dst *int, val string) error {
	n, err := strconv.Atoi(val)
	if err != nil || n < 0 {
		return fmt.Errorf("bad integer %q", val)
	}
	*dst = n
	return nil
}

func setBool(dst *bool, val string) error {
	switch val {
	case "on", "true", "1":
		*dst = true
	case "off", "false", "0":
		*dst = false
	default:
		return fmt.Errorf("bad boolean %q (want on/off)", val)
	}
	return nil
}
