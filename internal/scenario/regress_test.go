package scenario

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRegressCorpus replays every checked-in fuzzer repro in
// testdata/regress. Each file is a scenario minimized from a campaign
// violation (or a hand-reduced equivalent) of a bug that has since been
// fixed; its expect lines pin the fixed behavior, so a failure here means
// the bug came back. The fuzzer package replays the same corpus through
// its oracles (see internal/fuzzer's regress test).
func TestRegressCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "regress", "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no regress scenarios found")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			s, err := Parse(string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			rep, err := s.Run()
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if !rep.Passed() {
				for _, f := range rep.Failures() {
					t.Errorf("line %d: %s (measured %g)", f.Line, f.Text, f.Measured)
				}
			}
		})
	}
}
