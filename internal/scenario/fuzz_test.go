package scenario

import (
	"reflect"
	"testing"
)

// FuzzParse checks the scenario parser never panics and that every
// accepted script re-parses identically (parse determinism).
//
// The determinism oracle compares the full parsed structure with
// reflect.DeepEqual — spec, every timeline action field, every step, every
// expectation. The original oracle only compared len(actions)/len(steps),
// which two semantically different re-parses can satisfy: a parser bug
// that swapped a range's endpoints, dropped a fault clause's tail while
// accumulating "set fault" lines, or mis-numbered an action's line would
// have passed. The drop-range and double-fault seeds below exist to pin
// exactly those shapes.
func FuzzParse(f *testing.F) {
	f.Add("set algo dctcp\nat 0ms start 0 tx 0 rx 1\nrun 1ms\nexpect jain >= 0.9")
	f.Add("run 1ms")
	f.Add("# comment only\nrun 5us")
	f.Add("at 0ms flap rx 1 for 10us\nrun 1ms")
	f.Add("at 1ms mark flow 2 rx 0 psn 1..9\nrun 1ms")
	f.Add("set topology leafspine:2x2\nset ports 4\nat 0ms start 0 tx 0 rx 1\nrun 1ms\nexpect misroutes == 0")
	f.Add("set topology fattree:4\nrun 1ms")
	f.Add("set topology parkinglot:3\nset pfc on\nrun 1ms\nexpect network_drops == 0")
	f.Add("set topology dumbbell\nset topology leafspine:8,8\nrun 1us")
	f.Add("set fault linkdown fwd1 at 2ms for 300us\nrun 8ms\nexpect faults_recovered == 1")
	f.Add("set fault lossburst tx0 at 1ms for 200us prob 0.1 seed 7\nset fault nicstall at 4ms for 100us\nrun 6ms\nexpect fault_ttr_us < 5000")
	f.Add("set topology leafspine:2x2\nset ports 4\nset fault brownout leaf0->spine1 at 1ms for 1ms frac 0.25\nat 0ms start 0 tx 0 rx 1\nrun 4ms")
	f.Add("set fault linkdown fwd0 at 1ms for 1ms\nset fault linkdown fwd0 at 1.5ms for 1ms\nrun 3ms")
	f.Add("set pattern incast:period=1ms,fanin=4,victim=1,size=50\nrun 3ms\nexpect burst_absorption > 0.5")
	f.Add("set ports 4\nset pattern flood:peak=20G,victim=2,period=2ms,duty=0.5\nset pattern square:period=1ms,duty=0.2,peak=10G,base=1G\nat 0ms start 0 tx 0 rx 1\nrun 4ms\nexpect overload_us >= 0\nexpect peak_queue_bytes > 0")
	f.Add("set pattern mmpp:rates=1G|40G,dwell=1ms|250us,seed=7,dist=datamining\nrun 2ms\nexpect bg_fct_inflation > 0")
	f.Add("set pattern lognormal:rate=5G,sigma=1.5,victim=0\nset pattern saw:period=2ms,peak=20G,base=1G\nrun 1ms")
	f.Add("set algo dctcp\nset aqm dualpi2:target=5us,tupdate=25us,step=10us\nat 0ms start 0 tx 0 rx 1\nrun 2ms\nexpect ecn_mark_rate > 0\nexpect sojourn_p99_us < 100")
	f.Add("set aqm red:min=30000,max=90000,pmax=0.02\nrun 1ms")
	f.Add("set aqm codel:target=50us,interval=1ms\nset algo cubic\nrun 1ms\nexpect sojourn_p99_us >= 0")
	f.Add("set aqm pie:target=20us,tupdate=50us\nset aqm pi2:target=20us\nrun 1ms")
	// Seeds the structural oracle needs and the old length-only oracle
	// could not tell apart: a drop range whose endpoints must survive the
	// round trip (psnA/psnB, not just "one action"), a single-psn drop
	// that must parse as a degenerate range, and two accumulated fault
	// clauses whose order and content must be preserved verbatim (the
	// length check saw "len(actions)==0" either way).
	f.Add("at 1ms drop flow 0 rx 1 psn 40..47\nat 0ms start 0 tx 0 rx 1 size 300\nrun 8ms\nexpect completions == 1")
	f.Add("at 1ms drop flow 3 rx 2 psn 9\nrun 2ms")
	f.Add("set fault lossburst tx1 at 1ms for 100us prob 0.5 seed 3\nset fault brownout fwd0 at 3ms for 200us frac 0.5\nrun 5ms")
	f.Fuzz(func(t *testing.T, src string) {
		s1, err := Parse(src)
		if err != nil {
			return
		}
		s2, err := Parse(src)
		if err != nil {
			t.Fatalf("accepted script failed to re-parse: %v", err)
		}
		if !reflect.DeepEqual(s1.spec, s2.spec) {
			t.Fatalf("parse is not deterministic: spec\n%+v\n%+v", s1.spec, s2.spec)
		}
		if !reflect.DeepEqual(s1.actions, s2.actions) {
			t.Fatalf("parse is not deterministic: actions\n%+v\n%+v", s1.actions, s2.actions)
		}
		if !reflect.DeepEqual(s1.steps, s2.steps) {
			t.Fatalf("parse is not deterministic: steps\n%+v\n%+v", s1.steps, s2.steps)
		}
	})
}
