package scenario

import "testing"

// FuzzParse checks the scenario parser never panics and that every
// accepted script re-parses identically (parse determinism).
func FuzzParse(f *testing.F) {
	f.Add("set algo dctcp\nat 0ms start 0 tx 0 rx 1\nrun 1ms\nexpect jain >= 0.9")
	f.Add("run 1ms")
	f.Add("# comment only\nrun 5us")
	f.Add("at 0ms flap rx 1 for 10us\nrun 1ms")
	f.Add("at 1ms mark flow 2 rx 0 psn 1..9\nrun 1ms")
	f.Add("set topology leafspine:2x2\nset ports 4\nat 0ms start 0 tx 0 rx 1\nrun 1ms\nexpect misroutes == 0")
	f.Add("set topology fattree:4\nrun 1ms")
	f.Add("set topology parkinglot:3\nset pfc on\nrun 1ms\nexpect network_drops == 0")
	f.Add("set topology dumbbell\nset topology leafspine:8,8\nrun 1us")
	f.Add("set fault linkdown fwd1 at 2ms for 300us\nrun 8ms\nexpect faults_recovered == 1")
	f.Add("set fault lossburst tx0 at 1ms for 200us prob 0.1 seed 7\nset fault nicstall at 4ms for 100us\nrun 6ms\nexpect fault_ttr_us < 5000")
	f.Add("set topology leafspine:2x2\nset ports 4\nset fault brownout leaf0->spine1 at 1ms for 1ms frac 0.25\nat 0ms start 0 tx 0 rx 1\nrun 4ms")
	f.Add("set fault linkdown fwd0 at 1ms for 1ms\nset fault linkdown fwd0 at 1.5ms for 1ms\nrun 3ms")
	f.Fuzz(func(t *testing.T, src string) {
		s1, err := Parse(src)
		if err != nil {
			return
		}
		s2, err := Parse(src)
		if err != nil {
			t.Fatalf("accepted script failed to re-parse: %v", err)
		}
		if len(s1.actions) != len(s2.actions) || len(s1.steps) != len(s2.steps) {
			t.Fatal("parse is not deterministic")
		}
	})
}
