// Package scenario implements a packetdrill-style scripting language for
// the tester (the paper's related work, §2.2, places Marlin in the lineage
// of scriptable testers like packetdrill). A scenario is a small text
// program: configuration, a timeline of flow starts/stops and injected
// faults, run directives, and expectations evaluated against the
// control-plane registers.
//
//	# two DCTCP flows into one port, with a scripted loss
//	set algo dctcp
//	set ports 3
//	set ecn 65
//	set fault linkdown fwd2 at 2ms for 300us
//	at 0ms   start 0 tx 0 rx 2
//	at 0ms   start 1 tx 1 rx 2
//	at 1ms   drop flow 0 rx 2 psn 5000
//	run 8ms
//	expect false_losses == 0
//	expect jain >= 0.95
//	expect faults_recovered == 1
//	expect fault_ttr_us < 5000
//
// Durations use Go syntax (1ms, 250us). Lines starting with '#' are
// comments. Expectations compare a metric against a constant with one of
// ==, !=, <, <=, >, >=. "set fault KIND ..." clauses (faults.ParseSpec
// syntax) build a deterministic time-domain fault plan; the
// faults_recovered and fault_ttr_us metrics read its recovery telemetry.
// "set pattern NAME:key=value,..." clauses (workload.ParseSpec syntax)
// layer deterministic traffic patterns — bursts, incast storms, floods —
// over the test; the burst_absorption, peak_queue_bytes, overload_us, and
// bg_fct_inflation metrics read the victim port's overload telemetry.
// "set aqm NAME:key=value,..." (aqm.ParseSpec syntax) replaces drop-tail
// queues with an AQM discipline — red, pie, codel, pi2, or dualpi2 — and
// the ecn_mark_rate and sojourn_p99_us metrics read the marking rate and
// worst per-band p99 queueing delay it produced. "set shards N" executes
// a topology scenario as a conservative parallel build on up to N worker
// cores; every metric is byte-identical for any N >= 1.
package scenario

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"marlin/internal/controlplane"
	"marlin/internal/core"
	"marlin/internal/measure"
	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// Scenario is a parsed script.
type Scenario struct {
	spec    controlplane.Spec
	actions []action
	steps   []step
}

// action is a timeline entry.
type action struct {
	at   sim.Duration
	line int
	kind string // start, stop, drop, mark
	flow packet.FlowID
	tx   int
	rx   int
	size uint32
	psnA uint32
	psnB uint32
	flap sim.Duration
}

// step is a run or expect directive, executed in order.
type step struct {
	line   int
	run    sim.Duration // nonzero = advance the clock
	expect *expectation
}

// expectation is one metric assertion.
type expectation struct {
	metric string
	flow   packet.FlowID
	hasFlo bool
	op     string
	value  float64
	raw    string
}

// CheckResult is one evaluated expectation.
type CheckResult struct {
	Line     int
	Text     string
	Measured float64
	Pass     bool
}

// Report is the outcome of a scenario run.
type Report struct {
	Checks []CheckResult
	// Elapsed is the simulated time consumed by run directives.
	Elapsed sim.Duration
	// Snapshot is the final register readout.
	Snapshot controlplane.Snapshot
}

// Passed reports whether every expectation held.
func (r *Report) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Failures lists the failed checks.
func (r *Report) Failures() []CheckResult {
	var out []CheckResult
	for _, c := range r.Checks {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// Summary renders a human-readable result.
func (r *Report) Summary() string {
	var b strings.Builder
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "%s  line %-3d %-40s (measured %.4g)\n", mark, c.Line, c.Text, c.Measured)
	}
	fmt.Fprintf(&b, "%d/%d checks passed over %v simulated\n",
		len(r.Checks)-len(r.Failures()), len(r.Checks), r.Elapsed)
	return b.String()
}

// Run executes the scenario and evaluates its expectations.
func (s *Scenario) Run() (*Report, error) {
	eng := sim.NewEngine()
	tr, err := s.spec.Deploy(eng)
	if err != nil {
		return nil, err
	}
	// Schedule timeline actions.
	for _, a := range s.actions {
		a := a
		eng.ScheduleAt(sim.Time(a.at), func() {
			switch a.kind {
			case "start":
				if err := tr.StartFlow(a.flow, a.tx, a.rx, a.size); err != nil {
					panic(fmt.Sprintf("scenario line %d: %v", a.line, err))
				}
			case "stop":
				tr.StopFlow(a.flow)
			case "drop":
				tr.ForwardLink(a.rx).AddHook(netem.NewScript().DropRange(a.flow, a.psnA, a.psnB).Hook)
			case "mark":
				tr.ForwardLink(a.rx).AddHook(netem.NewScript().MarkRange(a.flow, a.psnA, a.psnB).Hook)
			case "flap":
				// Blackout: pause the link toward rx, resume after the
				// flap duration. Queued packets wait; RTOs fire if the
				// outage exceeds them.
				link := tr.ForwardLink(a.rx)
				link.Pause()
				eng.Schedule(a.flap, link.Resume)
			}
		})
	}

	rep := &Report{}
	var elapsed sim.Duration
	for _, st := range s.steps {
		if st.run > 0 {
			elapsed += st.run
			tr.Run(sim.Time(elapsed))
			continue
		}
		val, err := s.measure(tr, st.expect, elapsed)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", st.line, err)
		}
		rep.Checks = append(rep.Checks, CheckResult{
			Line:     st.line,
			Text:     st.expect.raw,
			Measured: val,
			Pass:     compare(val, st.expect.op, st.expect.value),
		})
	}
	rep.Elapsed = elapsed
	rep.Snapshot = controlplane.ReadRegisters(tr)
	return rep, nil
}

// measure evaluates one metric against the tester's registers.
func (s *Scenario) measure(tr *core.Tester, e *expectation, elapsed sim.Duration) (float64, error) {
	snap := controlplane.ReadRegisters(tr)
	losses := controlplane.ReadLosses(tr)
	secs := elapsed.Seconds()
	switch e.metric {
	case "completions":
		return float64(snap.FCTCount), nil
	case "false_losses":
		return float64(losses.FalseLosses), nil
	case "network_drops":
		return float64(losses.NetworkDrops), nil
	case "misroutes":
		return float64(losses.Misroutes), nil
	case "cnp_tx":
		return float64(snap.Switch.CnpTx), nil
	case "ooo_rx":
		return float64(snap.Switch.OutOfOrderRx), nil
	case "rtx":
		return float64(snap.NIC.RtxTx), nil
	case "total_gbps":
		if secs == 0 {
			return 0, nil
		}
		return float64(snap.Switch.DataTxBytes) * 8 / secs / 1e9, nil
	case "flow_gbps":
		if secs == 0 {
			return 0, nil
		}
		return float64(tr.GoodputBits(e.flow)) / secs / 1e9, nil
	case "jain":
		var rates []float64
		for _, f := range s.startedFlows() {
			rates = append(rates, float64(tr.GoodputBits(f)))
		}
		return measure.JainIndex(rates), nil
	case "fct_p50_us", "fct_p99_us":
		cdf := measure.NewCDF(tr.FCTs.FCTs())
		if cdf.Len() == 0 {
			return 0, fmt.Errorf("no completed flows for %s", e.metric)
		}
		p := 0.5
		if e.metric == "fct_p99_us" {
			p = 0.99
		}
		return cdf.Percentile(p), nil
	case "rtt_p50_us", "rtt_ewma_us":
		samples, count, ewma := tr.RTTSamples()
		if count == 0 {
			return 0, fmt.Errorf("no RTT probes for %s", e.metric)
		}
		if e.metric == "rtt_ewma_us" {
			return ewma, nil
		}
		return measure.NewCDF(samples).Percentile(0.5), nil
	case "ecn_mark_rate":
		// CE marks per forwarded packet across the tested network —
		// step-ECN and AQM marks both fold into the queues' ECNMarks.
		var marks, tx uint64
		for _, sw := range snap.Network {
			for _, ps := range sw.Ports {
				marks += ps.ECNMarks
				tx += ps.TxPackets
			}
		}
		if tx == 0 {
			return 0, nil
		}
		return float64(marks) / float64(tx), nil
	case "sojourn_p99_us":
		// Worst per-band p99 queueing delay over the AQM-managed ports.
		found := false
		worst := 0.0
		for _, sw := range snap.Network {
			for _, ps := range sw.Ports {
				if ps.AQM == nil {
					continue
				}
				found = true
				for _, v := range ps.AQM.SojournP99Us {
					if v > worst {
						worst = v
					}
				}
			}
		}
		if !found {
			return 0, fmt.Errorf("no AQM discipline installed for %s", e.metric)
		}
		return worst, nil
	case "faults_recovered":
		n := 0.0
		for _, r := range tr.FaultRecoveries() {
			if r.Recovered {
				n++
			}
		}
		return n, nil
	case "fault_ttr_us":
		// Worst time-to-recover across the plan; an unrecovered fault
		// measures +Inf so any upper-bound expectation fails loudly.
		rs := tr.FaultRecoveries()
		if len(rs) == 0 {
			return 0, fmt.Errorf("no fault plan installed for %s", e.metric)
		}
		worst := 0.0
		for _, r := range rs {
			if !r.Recovered {
				return math.Inf(1), nil
			}
			if us := float64(r.TimeToRecover) / float64(sim.Microsecond); us > worst {
				worst = us
			}
		}
		return worst, nil
	case "burst_absorption", "peak_queue_bytes", "overload_us", "bg_fct_inflation":
		if snap.Overload == nil {
			return 0, fmt.Errorf("no pattern plan installed for %s", e.metric)
		}
		switch e.metric {
		case "burst_absorption":
			return snap.Overload.BurstAbsorption, nil
		case "peak_queue_bytes":
			return float64(snap.Overload.PeakQueueBytes), nil
		case "overload_us":
			return snap.Overload.TimeInOverload.Microseconds(), nil
		default: // bg_fct_inflation
			// Background flows are the ones the timeline started — their
			// IDs sit below the pattern driver's flow base.
			var bg []measure.FCTRecord
			for _, rec := range tr.FCTs.Records() {
				if rec.Flow < tr.PatternDriver().FlowBase() {
					bg = append(bg, rec)
				}
			}
			return measure.FCTInflation(bg, snap.Overload.Windows), nil
		}
	default:
		return 0, fmt.Errorf("unknown metric %q", e.metric)
	}
}

// startedFlows lists the distinct flows the timeline starts (for jain),
// sorted by flow ID. The order matters: the Jain index sums squared floats,
// and float addition is not associative, so iterating a map here would make
// the metric's low bits vary run to run for the same seed.
func (s *Scenario) startedFlows() []packet.FlowID {
	seen := make(map[packet.FlowID]bool)
	var out []packet.FlowID
	for _, a := range s.actions {
		if a.kind == "start" && !seen[a.flow] {
			seen[a.flow] = true
			out = append(out, a.flow)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func compare(v float64, op string, want float64) bool {
	switch op {
	case "==":
		return v == want
	case "!=":
		return v != want
	case "<":
		return v < want
	case "<=":
		return v <= want
	case ">":
		return v > want
	case ">=":
		return v >= want
	}
	return false
}
