package netem

import (
	"marlin/internal/aqm"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// HookAction is the verdict of a link hook on a packet.
type HookAction int

// Hook verdicts.
const (
	// Pass lets the packet proceed unchanged.
	Pass HookAction = iota
	// Drop discards the packet (counted as an injected loss, not a
	// queue drop).
	Drop
	// MarkCE forces the CE bit on and passes the packet.
	MarkCE
)

// Hook inspects each packet entering the link and may drop or mark it.
// Hooks implement the paper's §7.1 methodology of "deliberately introduced
// packet loss events and modified ECN markings at specific points".
type Hook func(p *packet.Packet) HookAction

// Remote is the far end of a link whose destination node lives on another
// partition's engine (a cross-shard cut). Carry is called on the source
// partition's goroutine, at drain time, with the packet and its absolute
// arrival timestamp; the implementation owns the packet from that point and
// must not touch destination-partition state until the next barrier. The
// conservative-synchronization invariant that makes this sound: a packet
// drained during a round arrives no earlier than drain time plus the link's
// propagation delay, which is at least the round horizon by the lookahead
// rule, so the destination engine's clock has not reached it yet.
type Remote interface {
	Carry(p *packet.Packet, deliverAt sim.Time)
}

// LinkStats are the per-link counters.
type LinkStats struct {
	TxPackets     uint64
	TxBytes       uint64
	InjectedDrops uint64
	InjectedMarks uint64
	// DownDrops counts packets that arrived while the link was
	// administratively down (carrier loss) and were discarded.
	DownDrops uint64
}

// Link models a unidirectional cable fronted by a bounded FIFO queue: the
// standard queue-then-serialize-then-propagate pipeline. Packets that pass
// admission are serialized at the link rate in order and delivered to the
// destination Node one propagation delay after their last bit leaves.
type Link struct {
	eng       *sim.Engine
	rate      sim.Rate
	delay     sim.Duration
	queue     *Queue
	dst       Node
	remote    Remote
	hooks     []Hook
	enableINT bool
	jitter    sim.Duration
	jrng      *sim.Rand

	draining bool
	paused   bool
	down     bool
	stats    LinkStats

	// drainFn and deliverFn are allocated once: scheduling a method value
	// or a per-packet closure would allocate on every frame.
	drainFn   sim.Func
	deliverFn sim.ArgFunc
}

// LinkConfig configures a Link.
type LinkConfig struct {
	// Rate is the line rate; required.
	Rate sim.Rate
	// Delay is the one-way propagation delay.
	Delay sim.Duration
	// QueueBytes bounds the ingress queue (0 = DefaultQueueCapacity).
	QueueBytes int
	// ECN configures marking at the ingress queue.
	ECN ECNConfig
	// EnableINT stamps each departing DATA packet with this hop's
	// telemetry (queue depth, cumulative tx bytes, rate, timestamp) for
	// INT-based congestion control.
	EnableINT bool
	// Jitter adds a uniform random [0, Jitter] extra propagation delay
	// per packet; jitter exceeding the serialization gap reorders
	// packets, exercising receiver out-of-order handling.
	Jitter sim.Duration
	// RNG seeds probabilistic marking; nil uses a fixed-seed stream.
	RNG *sim.Rand
	// AQM attaches an active-queue-management discipline to the ingress
	// queue, superseding the threshold-ECN config. The discipline's RNG
	// is split off RNG at build time so its marking stream is independent
	// of jitter and legacy-marking draws.
	AQM aqm.Spec
}

// NewLink builds a link that delivers to dst.
func NewLink(eng *sim.Engine, cfg LinkConfig, dst Node) *Link {
	if cfg.Rate <= 0 {
		panic("netem: link with non-positive rate")
	}
	jrng := cfg.RNG
	if jrng == nil {
		jrng = sim.NewRand(0x1a77e6)
	}
	l := &Link{
		eng:       eng,
		rate:      cfg.Rate,
		delay:     cfg.Delay,
		queue:     NewQueue(cfg.QueueBytes, cfg.ECN, cfg.RNG),
		dst:       dst,
		enableINT: cfg.EnableINT,
		jitter:    cfg.Jitter,
		jrng:      jrng,
	}
	if cfg.AQM.Enabled() {
		src := cfg.RNG
		if src == nil {
			src = sim.NewRand(0xa97)
		}
		l.queue.SetAQM(cfg.AQM.Build(l.queue.Capacity(), src.Split()), eng.Now)
	}
	l.drainFn = l.drain
	l.deliverFn = func(arg any) { l.dst.Receive(arg.(*packet.Packet)) }
	return l
}

// AddHook registers a packet hook. Hooks run in registration order; the
// first non-Pass verdict wins.
func (l *Link) AddHook(h Hook) { l.hooks = append(l.hooks, h) }

// SetRemote turns the link into a cross-shard egress: queueing,
// serialization, INT stamping, and the jitter draw all stay on the local
// engine exactly as in the in-partition path, but instead of scheduling a
// local delivery the drained packet is handed to r with its computed
// arrival time. A link built with a nil dst must have a Remote installed
// before its first Send.
func (l *Link) SetRemote(r Remote) { l.remote = r }

// Rate returns the configured line rate.
func (l *Link) Rate() sim.Rate { return l.rate }

// Delay returns the configured propagation delay.
func (l *Link) Delay() sim.Duration { return l.delay }

// Queue exposes the ingress queue for configuration inspection and stats.
func (l *Link) Queue() *Queue { return l.queue }

// Stats returns a snapshot of the link counters.
func (l *Link) Stats() LinkStats { return l.stats }

// Send submits a packet to the link. It applies hooks, then queue
// admission, and starts the drain loop if idle. While the link is down,
// arrivals are discarded (counted in DownDrops) — carrier loss destroys
// the frame on the wire, it does not buffer it.
func (l *Link) Send(p *packet.Packet) {
	if l.down {
		l.stats.DownDrops++
		p.Release()
		return
	}
	for _, h := range l.hooks {
		switch h(p) {
		case Drop:
			l.stats.InjectedDrops++
			p.Release()
			return
		case MarkCE:
			p.Flags |= packet.FlagCE
			l.stats.InjectedMarks++
		}
	}
	if !l.queue.Enqueue(p) {
		p.Release() // tail drop
		return
	}
	if !l.draining {
		l.draining = true
		l.drain()
	}
}

// Receive implements Node so links can be chained behind switches.
func (l *Link) Receive(p *packet.Packet) { l.Send(p) }

// Pause stops the drain loop after the in-flight frame (a received PFC
// pause); queued packets wait rather than drop.
func (l *Link) Pause() { l.paused = true }

// Resume restarts a paused link.
func (l *Link) Resume() {
	if !l.paused {
		return
	}
	l.paused = false
	l.restart()
}

// Paused reports whether the link is PFC-paused.
func (l *Link) Paused() bool { return l.paused }

// SetDown changes the link's administrative state. Taking the link down
// stops the drain loop after the in-flight frame; packets already queued
// are HELD, not flushed — they model frames sitting in the upstream port
// buffer, which survives a downstream carrier loss. New arrivals while
// down are dropped and counted in DownDrops (ownership: the link Releases
// them, per the pool rule that whoever consumes a packet frees it).
// Bringing the link back up restarts the drain if work is queued and the
// link is not also PFC-paused.
func (l *Link) SetDown(down bool) {
	if l.down == down {
		return
	}
	l.down = down
	if !down {
		l.restart()
	}
}

// Down reports whether the link is administratively down.
func (l *Link) Down() bool { return l.down }

// SetRate changes the line rate in place (a brownout or recovery). The new
// rate applies from the next dequeued frame; the in-flight frame finishes
// at the old rate, as real PHYs do.
func (l *Link) SetRate(r sim.Rate) {
	if r <= 0 {
		panic("netem: SetRate to non-positive rate")
	}
	l.rate = r
}

// restart re-enters the drain loop if the link may transmit and has work.
func (l *Link) restart() {
	if !l.paused && !l.down && !l.draining && l.queue.Len() > 0 {
		l.draining = true
		l.drain()
	}
}

func (l *Link) drain() {
	if l.paused || l.down {
		l.draining = false
		return
	}
	p := l.queue.Dequeue()
	if p == nil {
		l.draining = false
		return
	}
	if l.enableINT && p.Type == packet.DATA {
		p.INT.Push(packet.INTHop{
			QueueBytes: uint32(l.queue.Bytes()),
			TxBytes:    l.stats.TxBytes,
			Rate:       l.rate,
			TS:         l.eng.Now(),
		})
	}
	ser := l.rate.Serialize(packet.WireSize(p.Size))
	l.stats.TxPackets++
	l.stats.TxBytes += uint64(p.Size)
	prop := l.delay
	if l.jitter > 0 {
		prop += sim.Duration(l.jrng.Float64() * float64(l.jitter))
	}
	// Last bit leaves at now+ser; arrival is the propagation later.
	if l.remote != nil {
		l.remote.Carry(p, l.eng.Now().Add(ser+prop))
	} else {
		l.eng.ScheduleArg(ser+prop, l.deliverFn, p)
	}
	l.eng.Schedule(ser, l.drainFn)
}
