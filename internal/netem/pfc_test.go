package netem

import (
	"testing"

	"marlin/internal/packet"
	"marlin/internal/sim"
)

func TestPFCConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	q := NewQueue(10000, ECNConfig{}, nil)
	bad := []PFCConfig{
		{XOFF: 0, XON: 0},
		{XOFF: 100, XON: 100},   // XON >= XOFF
		{XOFF: 20000, XON: 100}, // XOFF beyond capacity
		{XOFF: 100, XON: -1},
	}
	for i, cfg := range bad {
		if _, err := NewPFC(eng, q, nil, cfg); err == nil {
			t.Errorf("bad PFC config %d accepted", i)
		}
	}
	if _, err := NewPFC(eng, q, nil, PFCConfig{XOFF: 5000, XON: 2500}); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestPFCPreventsDrops(t *testing.T) {
	// Two 10G senders into one 10G bottleneck with a small queue: without
	// PFC the queue drops; with PFC the upstream links pause and nothing
	// is lost.
	run := func(pfc bool) (drops, delivered uint64, pauses uint64) {
		eng := sim.NewEngine()
		var sink Sink
		bottleneck := NewLink(eng, LinkConfig{
			Rate: 10 * sim.Gbps, Delay: 1000, QueueBytes: 64 << 10,
		}, &sink)
		up1 := NewLink(eng, LinkConfig{Rate: 10 * sim.Gbps, Delay: 1000, QueueBytes: 4 << 20}, bottleneck)
		up2 := NewLink(eng, LinkConfig{Rate: 10 * sim.Gbps, Delay: 1000, QueueBytes: 4 << 20}, bottleneck)
		var ctl *PFC
		if pfc {
			var err error
			ctl, err = NewPFC(eng, bottleneck.Queue(), []*Link{up1, up2}, PFCConfig{
				XOFF: 32 << 10, XON: 16 << 10,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 500; i++ {
			up1.Send(data(1, uint32(i), 1024))
			up2.Send(data(2, uint32(i), 1024))
		}
		eng.RunAll()
		if ctl != nil {
			pauses = ctl.Pauses()
		}
		return bottleneck.Queue().Stats().Drops, sink.Packets, pauses
	}

	drops, _, _ := run(false)
	if drops == 0 {
		t.Fatal("baseline without PFC did not drop (test not stressing the queue)")
	}
	drops, delivered, pauses := run(true)
	if drops != 0 {
		t.Fatalf("PFC enabled but bottleneck dropped %d packets", drops)
	}
	if delivered != 1000 {
		t.Fatalf("delivered %d packets, want all 1000", delivered)
	}
	if pauses == 0 {
		t.Fatal("PFC never paused despite 2:1 overload")
	}
}

func TestPFCResumesAfterDrain(t *testing.T) {
	eng := sim.NewEngine()
	var sink Sink
	bottleneck := NewLink(eng, LinkConfig{Rate: sim.Gbps, Delay: 100, QueueBytes: 64 << 10}, &sink)
	up := NewLink(eng, LinkConfig{Rate: 10 * sim.Gbps, Delay: 100, QueueBytes: 4 << 20}, bottleneck)
	ctl, err := NewPFC(eng, bottleneck.Queue(), []*Link{up}, PFCConfig{XOFF: 16 << 10, XON: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		up.Send(data(1, uint32(i), 1024))
	}
	eng.RunAll()
	if sink.Packets != 100 {
		t.Fatalf("delivered %d/100 — pause never released", sink.Packets)
	}
	if ctl.Paused() {
		t.Fatal("controller still asserting pause after drain")
	}
	if !(ctl.Pauses() >= 1) {
		t.Fatal("no pause episode recorded")
	}
}

func TestLinkPauseResumeDirect(t *testing.T) {
	eng := sim.NewEngine()
	var sink Sink
	l := NewLink(eng, LinkConfig{Rate: sim.Gbps, QueueBytes: 1 << 20}, &sink)
	l.Pause()
	l.Send(data(1, 0, 1000))
	eng.RunAll()
	if sink.Packets != 0 {
		t.Fatal("paused link transmitted")
	}
	if !l.Paused() {
		t.Fatal("Paused() false")
	}
	l.Resume()
	eng.RunAll()
	if sink.Packets != 1 {
		t.Fatal("resume did not restart the drain")
	}
}

func TestINTStamping(t *testing.T) {
	eng := sim.NewEngine()
	var got *packet.Packet
	hop2 := NewLink(eng, LinkConfig{Rate: 100 * sim.Gbps, Delay: 500, EnableINT: true},
		NodeFunc(func(p *packet.Packet) { got = p }))
	hop1 := NewLink(eng, LinkConfig{Rate: 100 * sim.Gbps, Delay: 500, EnableINT: true}, hop2)
	hop1.Send(data(1, 0, 1024))
	hop1.Send(data(1, 1, 1024)) // queued behind the first
	eng.RunAll()
	if got == nil || got.INT.NHops != 2 {
		t.Fatalf("INT hops = %v, want 2", got.INT.NHops)
	}
	for j := 0; j < 2; j++ {
		h := got.INT.Hops[j]
		if h.Rate != 100*sim.Gbps {
			t.Fatalf("hop %d rate = %v", j, h.Rate)
		}
		if h.TxBytes == 0 {
			t.Fatalf("hop %d txBytes = 0 for the second packet", j)
		}
	}
}

func TestINTSkipsControlPackets(t *testing.T) {
	eng := sim.NewEngine()
	var got *packet.Packet
	l := NewLink(eng, LinkConfig{Rate: sim.Gbps, EnableINT: true},
		NodeFunc(func(p *packet.Packet) { got = p }))
	l.Send(packet.NewSche(1, 0, 0, 0))
	eng.RunAll()
	if got.INT.NHops != 0 {
		t.Fatal("INT stamped on a control packet")
	}
}

func TestINTStackBounded(t *testing.T) {
	var rec packet.INTRecord
	for i := 0; i < packet.MaxINTHops; i++ {
		if !rec.Push(packet.INTHop{Rate: sim.Gbps}) {
			t.Fatalf("push %d rejected below the cap", i)
		}
	}
	if rec.Push(packet.INTHop{}) {
		t.Fatal("push beyond MaxINTHops accepted")
	}
	if rec.NHops != packet.MaxINTHops {
		t.Fatalf("NHops = %d", rec.NHops)
	}
}

// twoSwitchChain wires host uplinks -> S1 -> trunk -> S2 with two S2
// egress ports: port 0 slow (the congestion point) and port 1 fast. PFC
// controllers watch the slow queue (pausing the trunk) and the trunk
// queue (pausing the host uplinks), so backpressure must travel two hops.
type twoSwitchChain struct {
	eng        *sim.Engine
	upA, upB   *Link
	trunk      *Link
	slow, fast *Link
	ctlSlow    *PFC // slow egress queue -> pauses trunk
	ctlTrunk   *PFC // trunk queue -> pauses host uplinks
}

func newTwoSwitchChain(t *testing.T, slowRate sim.Rate, dstA, dstB Node) *twoSwitchChain {
	t.Helper()
	c := &twoSwitchChain{eng: sim.NewEngine()}
	s2 := NewSwitch("s2", RouteByFlowTable(map[packet.FlowID]int{1: 0, 2: 1}))
	s2.AddPort(c.eng, LinkConfig{Rate: slowRate, Delay: 1000, QueueBytes: 256 << 10}, dstA)
	s2.AddPort(c.eng, LinkConfig{Rate: 10 * sim.Gbps, Delay: 1000, QueueBytes: 256 << 10}, dstB)
	s1 := NewSwitch("s1", RouteAllTo(0))
	s1.AddPort(c.eng, LinkConfig{Rate: 10 * sim.Gbps, Delay: 1000, QueueBytes: 256 << 10}, s2)
	c.trunk = s1.Port(0)
	c.slow, c.fast = s2.Port(0), s2.Port(1)
	c.upA = NewLink(c.eng, LinkConfig{Rate: 10 * sim.Gbps, Delay: 1000, QueueBytes: 4 << 20}, s1)
	c.upB = NewLink(c.eng, LinkConfig{Rate: 10 * sim.Gbps, Delay: 1000, QueueBytes: 4 << 20}, s1)
	var err error
	c.ctlSlow, err = NewPFC(c.eng, c.slow.Queue(), []*Link{c.trunk}, PFCConfig{XOFF: 32 << 10, XON: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	c.ctlTrunk, err = NewPFC(c.eng, c.trunk.Queue(), []*Link{c.upA, c.upB}, PFCConfig{XOFF: 32 << 10, XON: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func (c *twoSwitchChain) drops() uint64 {
	var n uint64
	for _, l := range []*Link{c.upA, c.upB, c.trunk, c.slow, c.fast} {
		n += l.Queue().Stats().Drops
	}
	return n
}

// TestPFCPausePropagatesAcrossTwoSwitches: congestion at the second
// switch's slow egress must pause the inter-switch trunk, whose backlog
// must in turn pause the host uplinks — and nothing may drop anywhere.
func TestPFCPausePropagatesAcrossTwoSwitches(t *testing.T) {
	var sinkA, sinkB Sink
	c := newTwoSwitchChain(t, sim.Gbps, &sinkA, &sinkB)
	for i := 0; i < 400; i++ {
		c.upA.Send(data(1, uint32(i), 1024))
	}
	c.eng.RunAll()
	if sinkA.Packets != 400 {
		t.Fatalf("delivered %d/400 through the paused chain", sinkA.Packets)
	}
	if got := c.drops(); got != 0 {
		t.Fatalf("lossless chain dropped %d packets", got)
	}
	if c.ctlSlow.Pauses() == 0 {
		t.Fatal("slow egress never paused the trunk")
	}
	if c.ctlTrunk.Pauses() == 0 {
		t.Fatal("pause did not propagate: trunk backlog never paused the host uplinks")
	}
	if c.ctlSlow.Paused() || c.ctlTrunk.Paused() {
		t.Fatal("controllers still assert pause after full drain")
	}
}

// TestPFCHeadOfLineBlocking: flow 2's path (fast egress) is uncongested,
// but PFC pausing the shared trunk for flow 1's congested egress parks
// flow 2's packets behind it — the classic HOL-blocking cost of
// losslessness, measured as delayed completion of the victim flow.
func TestPFCHeadOfLineBlocking(t *testing.T) {
	run := func(withAggressor bool) (victimDone sim.Time, drops uint64) {
		var sinkA Sink
		var done sim.Time
		var got uint64
		var c *twoSwitchChain
		victim := NodeFunc(func(p *packet.Packet) {
			got++
			done = c.eng.Now()
		})
		c = newTwoSwitchChain(t, sim.Gbps, &sinkA, victim)
		if withAggressor {
			for i := 0; i < 400; i++ {
				c.upA.Send(data(1, uint32(i), 1024))
			}
		}
		for i := 0; i < 100; i++ {
			c.upB.Send(data(2, uint32(i), 1024))
		}
		c.eng.RunAll()
		if got != 100 {
			t.Fatalf("victim delivered %d/100", got)
		}
		return done, c.drops()
	}

	alone, drops := run(false)
	if drops != 0 {
		t.Fatalf("uncongested run dropped %d", drops)
	}
	blocked, drops := run(true)
	if drops != 0 {
		t.Fatalf("PFC run dropped %d", drops)
	}
	if blocked < 2*alone {
		t.Fatalf("no head-of-line blocking: victim finished at %v vs %v alone", blocked, alone)
	}
}
