package netem

import (
	"testing"
	"testing/quick"

	"marlin/internal/packet"
	"marlin/internal/sim"
)

func data(flow packet.FlowID, psn uint32, size int) *packet.Packet {
	return packet.NewData(flow, psn, size, 0)
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(1<<20, ECNConfig{}, nil)
	for i := 0; i < 10; i++ {
		if !q.Enqueue(data(1, uint32(i), 100)) {
			t.Fatalf("enqueue %d rejected", i)
		}
	}
	if q.Len() != 10 || q.Bytes() != 1000 {
		t.Fatalf("Len=%d Bytes=%d", q.Len(), q.Bytes())
	}
	for i := 0; i < 10; i++ {
		p := q.Dequeue()
		if p == nil || p.PSN != uint32(i) {
			t.Fatalf("dequeue %d: got %v", i, p)
		}
	}
	if q.Dequeue() != nil {
		t.Fatal("dequeue on empty queue returned a packet")
	}
}

func TestQueueDropTail(t *testing.T) {
	q := NewQueue(250, ECNConfig{}, nil)
	if !q.Enqueue(data(1, 0, 100)) || !q.Enqueue(data(1, 1, 100)) {
		t.Fatal("initial packets rejected")
	}
	if q.Enqueue(data(1, 2, 100)) {
		t.Fatal("over-capacity packet admitted")
	}
	st := q.Stats()
	if st.Drops != 1 || st.DropBytes != 100 {
		t.Fatalf("drop stats = %+v", st)
	}
}

func TestQueueCompaction(t *testing.T) {
	q := NewQueue(1<<24, ECNConfig{}, nil)
	// Interleave enough enqueue/dequeue cycles to trigger compaction and
	// verify FIFO order survives it.
	next := uint32(0)
	want := uint32(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < 40; i++ {
			q.Enqueue(data(1, next, 64))
			next++
		}
		for i := 0; i < 35; i++ {
			p := q.Dequeue()
			if p == nil || p.PSN != want {
				t.Fatalf("round %d: got PSN %v, want %d", round, p, want)
			}
			want++
		}
	}
	for {
		p := q.Dequeue()
		if p == nil {
			break
		}
		if p.PSN != want {
			t.Fatalf("tail drain: got %d, want %d", p.PSN, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d packets, enqueued %d", want, next)
	}
}

func TestQueueStepMarking(t *testing.T) {
	// Step marking at K = 2 packets of 100B: the third and later arrivals
	// see backlog >= 200 and get CE.
	q := NewQueue(1<<20, StepMarking(2, 100), nil)
	var marked int
	for i := 0; i < 5; i++ {
		p := data(1, uint32(i), 100)
		q.Enqueue(p)
		if p.Flags.Has(packet.FlagCE) {
			marked++
		}
	}
	if marked != 3 {
		t.Fatalf("marked %d packets, want 3 (arrivals seeing backlog >= K)", marked)
	}
}

func TestQueueMarkingSkipsNonECT(t *testing.T) {
	q := NewQueue(1<<20, StepMarking(0, 1), nil)
	p := &packet.Packet{Type: packet.DATA, Size: 100} // no FlagECNCapable
	q.Enqueue(p)
	if p.Flags.Has(packet.FlagCE) {
		t.Fatal("non-ECT packet was CE-marked")
	}
}

func TestQueueREDMarkingRamp(t *testing.T) {
	// RED between 0 and 10 kB with PMax 1: marking frequency should grow
	// with backlog.
	rng := sim.NewRand(1)
	q := NewQueue(1<<20, ECNConfig{Enable: true, KMin: 0, KMax: 10000, PMax: 1}, rng)
	lowMarks, highMarks := 0, 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		// Low backlog: ~1 kB.
		q2 := NewQueue(1<<20, ECNConfig{Enable: true, KMin: 0, KMax: 10000, PMax: 1}, rng)
		q2.Enqueue(data(1, 0, 1000))
		p := data(1, 1, 1000)
		q2.Enqueue(p)
		if p.Flags.Has(packet.FlagCE) {
			lowMarks++
		}
	}
	for i := 0; i < trials; i++ {
		q3 := NewQueue(1<<20, ECNConfig{Enable: true, KMin: 0, KMax: 10000, PMax: 1}, rng)
		for j := 0; j < 9; j++ {
			q3.Enqueue(data(1, uint32(j), 1000))
		}
		p := data(1, 9, 1000)
		q3.Enqueue(p)
		if p.Flags.Has(packet.FlagCE) {
			highMarks++
		}
	}
	_ = q
	if lowMarks >= highMarks {
		t.Fatalf("RED ramp inverted: low=%d high=%d", lowMarks, highMarks)
	}
	if highMarks < trials*7/10 {
		t.Fatalf("high-backlog marking too rare: %d/%d", highMarks, trials)
	}
}

func TestLinkDeliversWithSerializationAndDelay(t *testing.T) {
	eng := sim.NewEngine()
	var arrived sim.Time
	sink := NodeFunc(func(p *packet.Packet) { arrived = eng.Now() })
	l := NewLink(eng, LinkConfig{Rate: 100 * sim.Gbps, Delay: 1000}, sink)
	l.Send(data(1, 0, 1024))
	eng.RunAll()
	want := sim.Time(83520 + 1000) // (1024+20)B wire at 100G, plus delay
	if arrived != want {
		t.Fatalf("arrival at %v, want %v", arrived, want)
	}
}

func TestLinkBackToBackSerialization(t *testing.T) {
	eng := sim.NewEngine()
	var arrivals []sim.Time
	sink := NodeFunc(func(p *packet.Packet) { arrivals = append(arrivals, eng.Now()) })
	l := NewLink(eng, LinkConfig{Rate: 100 * sim.Gbps}, sink)
	l.Send(data(1, 0, 1024))
	l.Send(data(1, 1, 1024))
	l.Send(data(1, 2, 1024))
	eng.RunAll()
	if len(arrivals) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(arrivals))
	}
	for i := 1; i < 3; i++ {
		gap := arrivals[i] - arrivals[i-1]
		if gap != 83520 {
			t.Fatalf("gap %d->%d = %v ps, want 83520 (full wire serialization)", i-1, i, gap)
		}
	}
}

func TestLinkIdleRestart(t *testing.T) {
	eng := sim.NewEngine()
	n := 0
	sink := NodeFunc(func(p *packet.Packet) { n++ })
	l := NewLink(eng, LinkConfig{Rate: 100 * sim.Gbps}, sink)
	l.Send(data(1, 0, 1024))
	eng.RunAll()
	l.Send(data(1, 1, 1024))
	eng.RunAll()
	if n != 2 {
		t.Fatalf("delivered %d packets after idle restart, want 2", n)
	}
}

func TestLinkThroughputAtLineRate(t *testing.T) {
	eng := sim.NewEngine()
	var rxBytes uint64
	sink := NodeFunc(func(p *packet.Packet) { rxBytes += uint64(p.Size) })
	l := NewLink(eng, LinkConfig{Rate: 10 * sim.Gbps, QueueBytes: 1 << 30}, sink)
	const n = 1000
	for i := 0; i < n; i++ {
		l.Send(data(1, uint32(i), 1500))
	}
	eng.RunAll()
	elapsed := eng.Now().Seconds()
	gbps := float64(rxBytes) * 8 / elapsed / 1e9
	if gbps < 9.8 || gbps > 9.9 {
		t.Fatalf("drained at %.3f Gbps of frame bytes, want ~9.87 (wire overhead excluded)", gbps)
	}
}

func TestLinkHookDropAndMark(t *testing.T) {
	eng := sim.NewEngine()
	var got []*packet.Packet
	sink := NodeFunc(func(p *packet.Packet) { got = append(got, p) })
	l := NewLink(eng, LinkConfig{Rate: sim.Gbps}, sink)
	l.AddHook(func(p *packet.Packet) HookAction {
		switch p.PSN {
		case 1:
			return Drop
		case 2:
			return MarkCE
		}
		return Pass
	})
	for i := 0; i < 3; i++ {
		l.Send(data(1, uint32(i), 100))
	}
	eng.RunAll()
	if len(got) != 2 {
		t.Fatalf("delivered %d, want 2", len(got))
	}
	if got[1].PSN != 2 || !got[1].Flags.Has(packet.FlagCE) {
		t.Fatalf("hook did not mark PSN 2: %+v", got[1])
	}
	st := l.Stats()
	if st.InjectedDrops != 1 || st.InjectedMarks != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLinkSetDownHoldsQueueDropsArrivals(t *testing.T) {
	eng := sim.NewEngine()
	got := 0
	sink := NodeFunc(func(p *packet.Packet) { got++; p.Release() })
	l := NewLink(eng, LinkConfig{Rate: sim.Gbps, QueueBytes: 1 << 20}, sink)
	for i := 0; i < 5; i++ {
		l.Send(data(1, uint32(i), 1000))
	}
	// The first frame is already in flight when the carrier drops; the rest
	// are held in the upstream buffer, not flushed.
	l.SetDown(true)
	eng.RunAll()
	if got != 1 {
		t.Fatalf("delivered %d while down, want 1 (in-flight frame only)", got)
	}
	if l.Queue().Len() != 4 {
		t.Fatalf("queue holds %d, want 4 (down holds queued frames)", l.Queue().Len())
	}
	// Arrivals during the outage are carrier losses.
	l.Send(data(1, 9, 1000))
	l.Send(data(1, 10, 1000))
	if st := l.Stats(); st.DownDrops != 2 {
		t.Fatalf("DownDrops = %d, want 2", st.DownDrops)
	}
	if !l.Down() {
		t.Fatal("Down() = false while down")
	}
	l.SetDown(false)
	eng.RunAll()
	if got != 5 {
		t.Fatalf("delivered %d after recovery, want 5 (held frames drain)", got)
	}
}

func TestLinkDownAndPauseIndependent(t *testing.T) {
	// A link both PFC-paused and down must not restart until BOTH clear.
	eng := sim.NewEngine()
	got := 0
	sink := NodeFunc(func(p *packet.Packet) { got++; p.Release() })
	l := NewLink(eng, LinkConfig{Rate: sim.Gbps, QueueBytes: 1 << 20}, sink)
	l.Pause()
	l.SetDown(true)
	l.Send(data(1, 0, 1000)) // down wins: carrier loss
	l.SetDown(false)
	l.Send(data(1, 1, 1000)) // queued behind the pause
	eng.RunAll()
	if got != 0 {
		t.Fatalf("delivered %d while paused, want 0", got)
	}
	l.Resume()
	eng.RunAll()
	if got != 1 {
		t.Fatalf("delivered %d after resume, want 1", got)
	}
	if st := l.Stats(); st.DownDrops != 1 {
		t.Fatalf("DownDrops = %d, want 1", st.DownDrops)
	}
}

func TestLinkSetRateBrownout(t *testing.T) {
	eng := sim.NewEngine()
	var arrivals []sim.Time
	sink := NodeFunc(func(p *packet.Packet) { arrivals = append(arrivals, eng.Now()); p.Release() })
	l := NewLink(eng, LinkConfig{Rate: 100 * sim.Gbps}, sink)
	l.Send(data(1, 0, 1024))
	l.Send(data(1, 1, 1024))
	eng.RunAll()
	l.SetRate(10 * sim.Gbps) // brownout to a tenth
	l.Send(data(1, 2, 1024))
	l.Send(data(1, 3, 1024))
	eng.RunAll()
	if len(arrivals) != 4 {
		t.Fatalf("delivered %d, want 4", len(arrivals))
	}
	if gap := arrivals[1] - arrivals[0]; gap != 83520 {
		t.Fatalf("pre-brownout gap = %v ps, want 83520", gap)
	}
	if gap := arrivals[3] - arrivals[2]; gap != 835200 {
		t.Fatalf("brownout gap = %v ps, want 835200 (10x slower)", gap)
	}
	if l.Rate() != 10*sim.Gbps {
		t.Fatalf("Rate() = %v after SetRate", l.Rate())
	}
}

func TestQueueSuppressMarking(t *testing.T) {
	// StepMarking(0, 1) marks every ECT arrival; suppression must win
	// without disturbing the configured thresholds.
	q := NewQueue(1<<20, StepMarking(0, 1), nil)
	q.SuppressMarking(true)
	p := data(1, 0, 100)
	q.Enqueue(p)
	if p.Flags.Has(packet.FlagCE) {
		t.Fatal("suppressed queue still marked CE")
	}
	if q.Stats().ECNMarks != 0 {
		t.Fatalf("ECNMarks = %d with marking suppressed", q.Stats().ECNMarks)
	}
	q.SuppressMarking(false)
	p2 := data(1, 1, 100)
	q.Enqueue(p2)
	if !p2.Flags.Has(packet.FlagCE) {
		t.Fatal("marking did not resume after suppression cleared")
	}
}

// TestPoolOwnershipDownedAndPausedPaths audits the pool ownership rule on
// the fault paths: every packet sent into a downed link or queued behind a
// PFC-paused port must be Released exactly once — by the link on a carrier
// loss, by the sink on eventual delivery. Runs under -race in CI.
func TestPoolOwnershipDownedAndPausedPaths(t *testing.T) {
	packet.SetAccounting(true)
	defer packet.SetAccounting(false)

	eng := sim.NewEngine()
	delivered := 0
	sink := NodeFunc(func(p *packet.Packet) { delivered++; p.Release() })
	l := NewLink(eng, LinkConfig{Rate: sim.Gbps, QueueBytes: 1 << 20}, sink)

	// Carrier-loss path: the link owns and Releases every arrival.
	l.SetDown(true)
	for i := 0; i < 50; i++ {
		l.Send(data(1, uint32(i), 500))
	}
	eng.RunAll()
	if n := packet.Live(); n != 0 {
		t.Fatalf("downed link leaked %d packets", n)
	}

	// Hold-then-recover path: queued frames survive the outage and drain.
	l.SetDown(false)
	for i := 0; i < 50; i++ {
		l.Send(data(1, uint32(i), 500))
	}
	l.SetDown(true)
	eng.RunAll()
	l.SetDown(false)
	eng.RunAll()
	if n := packet.Live(); n != 0 {
		t.Fatalf("down/up cycle leaked %d packets (delivered %d)", n, delivered)
	}

	// PFC path: a fast feeder into a slow bottleneck; the PFC controller
	// pauses the feeder and every queued packet must still drain.
	bottleneck := NewLink(eng, LinkConfig{Rate: sim.Gbps, QueueBytes: 100 << 10}, sink)
	feeder := NewLink(eng, LinkConfig{Rate: 100 * sim.Gbps, QueueBytes: 1 << 20}, bottleneck)
	pfc, err := NewPFC(eng, bottleneck.Queue(), []*Link{feeder}, PFCConfig{XOFF: 10 << 10, XON: 5 << 10})
	if err != nil {
		t.Fatal(err)
	}
	before := delivered
	for i := 0; i < 100; i++ {
		feeder.Send(data(2, uint32(i), 1000))
	}
	eng.RunAll()
	if pfc.Pauses() == 0 {
		t.Fatal("PFC never engaged; the paused path was not exercised")
	}
	if delivered-before != 100 {
		t.Fatalf("delivered %d of 100 through the paused path", delivered-before)
	}
	if n := packet.Live(); n != 0 {
		t.Fatalf("PFC pause path leaked %d packets", n)
	}
}

func TestSwitchRouting(t *testing.T) {
	eng := sim.NewEngine()
	var a, b Sink
	sw := NewSwitch("s", RouteByFlowTable(map[packet.FlowID]int{1: 0, 2: 1}))
	sw.AddPort(eng, LinkConfig{Rate: sim.Gbps}, &a)
	sw.AddPort(eng, LinkConfig{Rate: sim.Gbps}, &b)
	sw.Receive(data(1, 0, 100))
	sw.Receive(data(2, 0, 100))
	sw.Receive(data(3, 0, 100)) // unknown: dropped
	eng.RunAll()
	if a.Packets != 1 || b.Packets != 1 {
		t.Fatalf("a=%d b=%d, want 1 each", a.Packets, b.Packets)
	}
	if sw.Unrouted() != 1 {
		t.Fatalf("unrouted = %d, want 1", sw.Unrouted())
	}
	if sw.RxPackets() != 3 {
		t.Fatalf("rx = %d, want 3", sw.RxPackets())
	}
}

func TestSwitchFanInCongestionMarks(t *testing.T) {
	// Many senders into one ECN-marked bottleneck port must generate CE.
	eng := sim.NewEngine()
	var out Sink
	sw := NewSwitch("bottleneck", RouteAllTo(0))
	sw.AddPort(eng, LinkConfig{
		Rate: sim.Gbps, ECN: StepMarking(5, 1000), QueueBytes: 1 << 20,
	}, &out)
	for i := 0; i < 100; i++ {
		sw.Receive(data(packet.FlowID(i%4), uint32(i), 1000))
	}
	eng.RunAll()
	if out.Packets != 100 {
		t.Fatalf("delivered %d, want 100", out.Packets)
	}
	if sw.Port(0).Queue().Stats().ECNMarks == 0 {
		t.Fatal("fan-in produced no CE marks")
	}
}

func TestScriptDropOnceAllowsRetransmit(t *testing.T) {
	s := NewScript().DropOnce(1, 5)
	p := data(1, 5, 100)
	if s.Hook(p) != Drop {
		t.Fatal("first pass not dropped")
	}
	rtx := data(1, 5, 100)
	rtx.Flags |= packet.FlagRetransmit
	if s.Hook(rtx) != Pass {
		t.Fatal("retransmission dropped")
	}
	if s.Hook(data(1, 5, 100)) != Pass {
		t.Fatal("second original pass dropped (one-shot violated)")
	}
	if s.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", s.Pending())
	}
}

func TestScriptMarkRange(t *testing.T) {
	s := NewScript().MarkRange(1, 10, 12)
	for psn := uint32(9); psn <= 13; psn++ {
		act := s.Hook(data(1, psn, 100))
		want := Pass
		if psn >= 10 && psn <= 12 {
			want = MarkCE
		}
		if act != want {
			t.Fatalf("psn %d: action %v, want %v", psn, act, want)
		}
	}
	if s.Hook(&packet.Packet{Type: packet.ACK, Flow: 1, PSN: 11}) != Pass {
		t.Fatal("script acted on a non-DATA packet")
	}
}

func TestScriptDropInsideMarkedRangeSkipsRetransmit(t *testing.T) {
	// Regression: a PSN dropped by DropOnce inside a MarkRange span comes
	// back as a retransmission. The retransmit must sail through unmarked —
	// the mark entry binds to the original transmission only — otherwise the
	// injection couples to the CC algorithm's recovery behavior.
	s := NewScript().DropOnce(1, 5).MarkRange(1, 3, 7)
	if act := s.Hook(data(1, 5, 100)); act != Drop {
		t.Fatalf("original PSN 5: action %v, want Drop", act)
	}
	rtx := data(1, 5, 100)
	rtx.Flags |= packet.FlagRetransmit
	if act := s.Hook(rtx); act != Pass {
		t.Fatalf("retransmitted PSN 5: action %v, want Pass (mark must not fire)", act)
	}
	// Other retransmits in the marked range are exempt too.
	rtx6 := data(1, 6, 100)
	rtx6.Flags |= packet.FlagRetransmit
	if act := s.Hook(rtx6); act != Pass {
		t.Fatalf("retransmitted PSN 6: action %v, want Pass", act)
	}
	// Surrounding originals still get marked exactly once.
	for _, psn := range []uint32{3, 4, 6, 7} {
		if act := s.Hook(data(1, psn, 100)); act != MarkCE {
			t.Fatalf("original PSN %d: action %v, want MarkCE", psn, act)
		}
	}
	// The PSN-5 mark was never consumed: its only original transmission was
	// claimed by the drop entry, and the retransmission is exempt. Exactly
	// one mark entry stays pending.
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (unconsumed mark for the dropped PSN)", s.Pending())
	}
}

func TestQuickQueueConservation(t *testing.T) {
	// Property: packets out + packets dropped == packets in, and byte
	// accounting matches, for arbitrary enqueue/dequeue interleavings.
	f := func(ops []byte) bool {
		q := NewQueue(4096, ECNConfig{}, nil)
		var in, out, drop int
		psn := uint32(0)
		for _, op := range ops {
			if op%3 == 0 {
				if q.Dequeue() != nil {
					out++
				}
			} else {
				size := int(op)%1000 + 64
				in++
				if !q.Enqueue(data(1, psn, size)) {
					drop++
				}
				psn++
			}
		}
		return in == out+drop+q.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLinkForward(b *testing.B) {
	eng := sim.NewEngine()
	sink := NodeFunc(func(p *packet.Packet) {})
	l := NewLink(eng, LinkConfig{Rate: 100 * sim.Gbps, QueueBytes: 1 << 30}, sink)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Send(data(1, uint32(i), 1024))
		if i%1024 == 1023 {
			eng.RunAll()
		}
	}
	eng.RunAll()
}

func TestSwitchMisrouteCountedNotPanic(t *testing.T) {
	// A routing function pointing at a port the switch does not have is a
	// table bug; in a programmatically routed fabric it must surface as a
	// counted misroute in the loss report, not a panic.
	eng := sim.NewEngine()
	var out Sink
	sw := NewSwitch("s", RouteAllTo(7))
	sw.AddPort(eng, LinkConfig{Rate: sim.Gbps}, &out)
	sw.Receive(data(1, 0, 100))
	sw.Receive(data(1, 1, 100))
	eng.RunAll()
	if out.Packets != 0 {
		t.Fatalf("misrouted packets delivered: %d", out.Packets)
	}
	if sw.Misroutes() != 2 {
		t.Fatalf("misroutes = %d, want 2", sw.Misroutes())
	}
	if sw.Unrouted() != 0 {
		t.Fatalf("misroutes counted as unrouted: %d", sw.Unrouted())
	}
	if st := sw.Stats(); st.Misroutes != 2 {
		t.Fatalf("Stats().Misroutes = %d, want 2", st.Misroutes)
	}
}

func TestSwitchPerPortCounters(t *testing.T) {
	eng := sim.NewEngine()
	var a, b Sink
	sw := NewSwitch("s", RouteByFlowTable(map[packet.FlowID]int{1: 0, 2: 1}))
	sw.AddPort(eng, LinkConfig{Rate: sim.Gbps}, &a)
	sw.AddPort(eng, LinkConfig{Rate: sim.Gbps}, &b)
	// Flow 1 arrives on ingress port 0, flow 2 on ingress port 1.
	in0, in1 := sw.PortIn(0), sw.PortIn(1)
	for i := 0; i < 3; i++ {
		in0.Receive(data(1, uint32(i), 100))
	}
	in1.Receive(data(2, 0, 200))
	eng.RunAll()
	p0, p1 := sw.PortCounters(0), sw.PortCounters(1)
	if p0.RxPackets != 3 || p0.RxBytes != 300 {
		t.Fatalf("port 0 rx = %+v", p0)
	}
	if p0.TxPackets != 3 || p0.TxBytes != 300 {
		t.Fatalf("port 0 tx = %+v", p0)
	}
	if p1.RxPackets != 1 || p1.RxBytes != 200 || p1.TxPackets != 1 || p1.TxBytes != 200 {
		t.Fatalf("port 1 = %+v", p1)
	}
	st := sw.Stats()
	if st.Name != "s" || len(st.Ports) != 2 {
		t.Fatalf("Stats() = %+v", st)
	}
	if st.Ports[0].TxPackets != 3 || st.Ports[1].RxBytes != 200 {
		t.Fatalf("Stats().Ports = %+v", st.Ports)
	}
}

func TestSwitchStatsExposeQueueState(t *testing.T) {
	eng := sim.NewEngine()
	var out Sink
	sw := NewSwitch("s", RouteAllTo(0))
	sw.AddPort(eng, LinkConfig{Rate: sim.Gbps, QueueBytes: 1 << 20}, &out)
	for i := 0; i < 10; i++ {
		sw.Receive(data(1, uint32(i), 1000))
	}
	// Before the engine runs, all but the in-flight packet sit queued.
	st := sw.Stats()
	if st.Ports[0].QueuePkts == 0 || st.Ports[0].QueueBytes == 0 {
		t.Fatalf("queue state not visible: %+v", st.Ports[0])
	}
	sw.Port(0).Pause()
	if !sw.Stats().Ports[0].Paused {
		t.Fatal("pause state not visible in Stats")
	}
	sw.Port(0).Resume()
	eng.RunAll()
}
