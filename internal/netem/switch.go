package netem

import (
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// RouteFunc maps a packet to an output port index, or a negative value to
// drop it. Marlin tests address flows rather than IP prefixes, so routing
// is a pluggable function of the packet (normally its FlowID and Type).
type RouteFunc func(p *packet.Packet) int

// PortCounters are one switch port's packet/byte counters. RX counts
// packets that arrived attributed to the port (via PortIn); TX counts
// packets the routing function forwarded out of the port.
type PortCounters struct {
	RxPackets uint64
	RxBytes   uint64
	TxPackets uint64
	TxBytes   uint64
}

// PortStats is the control-plane view of one switch port: the counters
// plus the state of the egress link behind it (queue depth, drops, marks,
// pause) — the per-hop telemetry a fabric snapshot is made of.
type PortStats struct {
	PortCounters
	// QueueBytes and QueuePkts are the egress queue's instantaneous
	// backlog.
	QueueBytes int
	QueuePkts  int
	// Drops and ECNMarks are the egress queue's cumulative counters.
	Drops    uint64
	ECNMarks uint64
	// InjectedDrops counts hook-injected losses at the egress link
	// (scripted faults and loss bursts).
	InjectedDrops uint64
	// DownDrops counts carrier losses while the egress link was down.
	DownDrops uint64
	// Paused reports whether the egress link is PFC-paused right now.
	Paused bool
	// AQM holds the egress queue's discipline counters, nil when the
	// queue runs plain drop-tail.
	AQM *AQMStats
}

// Stats is a whole-switch telemetry snapshot.
type Stats struct {
	Name      string
	RxPackets uint64
	Unrouted  uint64
	Misroutes uint64
	Ports     []PortStats
}

// Switch is an output-queued switch in the tested network. Each output
// port is a Link (queue + serialization + propagation) toward a Node.
type Switch struct {
	name      string
	route     RouteFunc
	out       []*Link
	ports     []PortCounters
	lost      uint64
	rxPkts    uint64
	misroutes uint64
}

// NewSwitch creates a switch with the given routing function and no ports;
// attach ports with AddPort.
func NewSwitch(name string, route RouteFunc) *Switch {
	return &Switch{name: name, route: route}
}

// Name returns the switch's name.
func (s *Switch) Name() string { return s.name }

// AddPort appends an output port connected by a new Link to dst and
// returns the port index.
func (s *Switch) AddPort(eng *sim.Engine, cfg LinkConfig, dst Node) int {
	s.out = append(s.out, NewLink(eng, cfg, dst))
	s.ensurePort(len(s.out) - 1)
	return len(s.out) - 1
}

func (s *Switch) ensurePort(i int) {
	for len(s.ports) <= i {
		s.ports = append(s.ports, PortCounters{})
	}
}

// Port returns the link behind output port i.
func (s *Switch) Port(i int) *Link { return s.out[i] }

// Ports returns the number of output ports.
func (s *Switch) Ports() int { return len(s.out) }

// PortIn returns a Node that attributes arriving packets to ingress port i
// before routing them; wire upstream links to it (instead of the switch
// itself) to get per-port RX accounting.
func (s *Switch) PortIn(i int) Node {
	s.ensurePort(i)
	return NodeFunc(func(p *packet.Packet) {
		s.ports[i].RxPackets++
		s.ports[i].RxBytes += uint64(p.Size)
		s.Receive(p)
	})
}

// Receive implements Node: route and forward. A route verdict beyond the
// last port is counted as a misroute and the packet is discarded — in a
// programmatically routed fabric a table bug must surface as a counter in
// the loss report, not a crash of the whole tester.
func (s *Switch) Receive(p *packet.Packet) {
	s.rxPkts++
	i := s.route(p)
	if i < 0 {
		s.lost++
		p.Release()
		return
	}
	if i >= len(s.out) {
		s.misroutes++
		p.Release()
		return
	}
	s.ports[i].TxPackets++
	s.ports[i].TxBytes += uint64(p.Size)
	s.out[i].Send(p)
}

// Unrouted reports packets the routing function dropped.
func (s *Switch) Unrouted() uint64 { return s.lost }

// Misroutes reports packets routed to a port the switch does not have.
func (s *Switch) Misroutes() uint64 { return s.misroutes }

// RxPackets reports total packets the switch received.
func (s *Switch) RxPackets() uint64 { return s.rxPkts }

// PortCounters returns port i's packet/byte counters.
func (s *Switch) PortCounters(i int) PortCounters {
	s.ensurePort(i)
	return s.ports[i]
}

// Stats snapshots the whole switch: aggregate counters plus per-port
// counters and egress-queue state.
func (s *Switch) Stats() Stats {
	st := Stats{
		Name:      s.name,
		RxPackets: s.rxPkts,
		Unrouted:  s.lost,
		Misroutes: s.misroutes,
	}
	for i, l := range s.out {
		q := l.Queue()
		qs := q.Stats()
		ls := l.Stats()
		st.Ports = append(st.Ports, PortStats{
			PortCounters:  s.ports[i],
			QueueBytes:    q.Bytes(),
			QueuePkts:     q.Len(),
			Drops:         qs.Drops,
			ECNMarks:      qs.ECNMarks,
			InjectedDrops: ls.InjectedDrops,
			DownDrops:     ls.DownDrops,
			Paused:        l.Paused(),
			AQM:           q.AQMStats(),
		})
	}
	return st
}

// RouteByFlowPort routes every packet to out port p.Port. Useful for
// pass-through topologies where the tester pre-binds flows to ports.
func RouteByFlowPort(p *packet.Packet) int { return p.Port }

// RouteAllTo returns a RouteFunc sending everything to one port, creating
// the fan-in bottleneck used by the congestion and incast experiments.
func RouteAllTo(port int) RouteFunc {
	return func(*packet.Packet) int { return port }
}

// RouteByFlowTable returns a RouteFunc that looks flows up in a table and
// drops unknown flows.
func RouteByFlowTable(table map[packet.FlowID]int) RouteFunc {
	return func(p *packet.Packet) int {
		if port, ok := table[p.Flow]; ok {
			return port
		}
		return -1
	}
}
