package netem

import (
	"fmt"

	"marlin/internal/packet"
	"marlin/internal/sim"
)

// RouteFunc maps a packet to an output port index, or a negative value to
// drop it. Marlin tests address flows rather than IP prefixes, so routing
// is a pluggable function of the packet (normally its FlowID and Type).
type RouteFunc func(p *packet.Packet) int

// Switch is an output-queued switch in the tested network. Each output
// port is a Link (queue + serialization + propagation) toward a Node.
type Switch struct {
	name   string
	route  RouteFunc
	out    []*Link
	lost   uint64
	rxPkts uint64
}

// NewSwitch creates a switch with the given routing function and no ports;
// attach ports with AddPort.
func NewSwitch(name string, route RouteFunc) *Switch {
	return &Switch{name: name, route: route}
}

// AddPort appends an output port connected by a new Link to dst and
// returns the port index.
func (s *Switch) AddPort(eng *sim.Engine, cfg LinkConfig, dst Node) int {
	s.out = append(s.out, NewLink(eng, cfg, dst))
	return len(s.out) - 1
}

// Port returns the link behind output port i.
func (s *Switch) Port(i int) *Link { return s.out[i] }

// Ports returns the number of output ports.
func (s *Switch) Ports() int { return len(s.out) }

// Receive implements Node: route and forward.
func (s *Switch) Receive(p *packet.Packet) {
	s.rxPkts++
	i := s.route(p)
	if i < 0 {
		s.lost++
		return
	}
	if i >= len(s.out) {
		panic(fmt.Sprintf("netem: switch %q routed to missing port %d", s.name, i))
	}
	s.out[i].Send(p)
}

// Unrouted reports packets the routing function dropped.
func (s *Switch) Unrouted() uint64 { return s.lost }

// RxPackets reports total packets the switch received.
func (s *Switch) RxPackets() uint64 { return s.rxPkts }

// RouteByFlowPort routes every packet to out port p.Port. Useful for
// pass-through topologies where the tester pre-binds flows to ports.
func RouteByFlowPort(p *packet.Packet) int { return p.Port }

// RouteAllTo returns a RouteFunc sending everything to one port, creating
// the fan-in bottleneck used by the congestion and incast experiments.
func RouteAllTo(port int) RouteFunc {
	return func(*packet.Packet) int { return port }
}

// RouteByFlowTable returns a RouteFunc that looks flows up in a table and
// drops unknown flows.
func RouteByFlowTable(table map[packet.FlowID]int) RouteFunc {
	return func(p *packet.Packet) int {
		if port, ok := table[p.Flow]; ok {
			return port
		}
		return -1
	}
}
