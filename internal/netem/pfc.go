package netem

import (
	"fmt"

	"marlin/internal/sim"
)

// PFC implements priority flow control over one congestion point: when the
// watched queue's backlog crosses the XOFF watermark, pause frames go to
// every upstream link; when it drains below XON, resume frames follow.
// This is the losslessness RoCE fabrics rely on (the paper's DCQCN tests
// run on a PFC-enabled testbed); with PFC engaged, congestion shows up as
// paused upstream links and head-of-line blocking rather than drops.
//
// The model applies the pause after one propagation delay, like a real
// pause frame traveling back to the upstream transmitter.
type PFC struct {
	eng      *sim.Engine
	queue    *Queue
	upstream []*Link
	xoff     int
	xon      int
	delay    sim.Duration

	paused  bool
	pauses  uint64
	resumes uint64
}

// PFCConfig configures one controller.
type PFCConfig struct {
	// XOFF is the backlog (bytes) that triggers pause; it must leave
	// headroom below the queue capacity for in-flight data.
	XOFF int
	// XON is the backlog that releases the pause (must be < XOFF).
	XON int
	// Delay is the pause-frame propagation delay to the upstream
	// transmitters (default 1 us).
	Delay sim.Duration
}

// NewPFC watches queue and gates the given upstream links.
func NewPFC(eng *sim.Engine, queue *Queue, upstream []*Link, cfg PFCConfig) (*PFC, error) {
	if cfg.XOFF <= 0 || cfg.XON < 0 || cfg.XON >= cfg.XOFF {
		return nil, fmt.Errorf("netem: PFC watermarks XON %d / XOFF %d invalid", cfg.XON, cfg.XOFF)
	}
	if cfg.XOFF >= queue.Capacity() {
		return nil, fmt.Errorf("netem: XOFF %d leaves no headroom in a %d-byte queue",
			cfg.XOFF, queue.Capacity())
	}
	if cfg.Delay <= 0 {
		cfg.Delay = sim.Microsecond
	}
	p := &PFC{
		eng: eng, queue: queue, upstream: upstream,
		xoff: cfg.XOFF, xon: cfg.XON, delay: cfg.Delay,
	}
	queue.OnBacklogChange(p.onBacklog)
	return p, nil
}

func (p *PFC) onBacklog(bytes int) {
	switch {
	case !p.paused && bytes >= p.xoff:
		p.paused = true
		p.pauses++
		p.eng.Schedule(p.delay, func() {
			if !p.paused {
				return // already resumed before the frame landed
			}
			for _, l := range p.upstream {
				l.Pause()
			}
		})
	case p.paused && bytes <= p.xon:
		p.paused = false
		p.resumes++
		p.eng.Schedule(p.delay, func() {
			if p.paused {
				return
			}
			for _, l := range p.upstream {
				l.Resume()
			}
		})
	}
}

// Pauses reports how many pause episodes occurred.
func (p *PFC) Pauses() uint64 { return p.pauses }

// Paused reports whether the controller currently asserts pause.
func (p *PFC) Paused() bool { return p.paused }
