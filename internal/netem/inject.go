package netem

import "marlin/internal/packet"

// Script is a deterministic fault-injection plan keyed on (flow, PSN),
// reproducing §7.1's methodology: "for the sake of determinism and
// interpretability, we deliberately introduced packet loss events and
// modified ECN markings at specific points".
//
// A Script is installed on a Link with AddHook(script.Hook). Each entry
// fires exactly once, and only on original transmissions: retransmissions
// of a dropped or marked PSN pass through unharmed (see Hook).
type Script struct {
	drop map[scriptKey]bool
	mark map[scriptKey]bool
}

type scriptKey struct {
	flow packet.FlowID
	psn  uint32
}

// NewScript returns an empty script.
func NewScript() *Script {
	return &Script{
		drop: make(map[scriptKey]bool),
		mark: make(map[scriptKey]bool),
	}
}

// DropOnce schedules a one-shot drop of the flow's DATA packet with the
// given PSN.
func (s *Script) DropOnce(flow packet.FlowID, psn uint32) *Script {
	s.drop[scriptKey{flow, psn}] = true
	return s
}

// DropRange schedules one-shot drops of the flow's DATA packets with PSNs
// in [from, to] — a scripted multi-packet loss burst, the pattern that
// exercises NewReno-style hole-by-hole recovery.
func (s *Script) DropRange(flow packet.FlowID, from, to uint32) *Script {
	for psn := from; psn <= to; psn++ {
		s.drop[scriptKey{flow, psn}] = true
	}
	return s
}

// MarkRange schedules CE marking of the flow's DATA packets with PSNs in
// [from, to] (each marked once).
func (s *Script) MarkRange(flow packet.FlowID, from, to uint32) *Script {
	for psn := from; psn <= to; psn++ {
		s.mark[scriptKey{flow, psn}] = true
	}
	return s
}

// Hook is the Link hook implementing the script. Retransmissions are
// exempt from both drops and marks: §7.1's injections exist for
// determinism and interpretability, and a scripted event that re-fires on
// the retransmission of the PSN it targeted would couple the injection to
// the CC algorithm's recovery behavior — the same script would then mean
// different fault sequences under different algorithms. Each entry
// therefore binds to the first (original) transmission of its PSN only;
// an unconsumed mark whose PSN arrives first as a retransmission stays
// pending.
func (s *Script) Hook(p *packet.Packet) HookAction {
	if p.Type != packet.DATA || p.Flags.Has(packet.FlagRetransmit) {
		return Pass
	}
	k := scriptKey{p.Flow, p.PSN}
	if s.drop[k] {
		delete(s.drop, k)
		return Drop
	}
	if s.mark[k] {
		delete(s.mark, k)
		return MarkCE
	}
	return Pass
}

// Pending reports how many scripted events have not fired yet.
func (s *Script) Pending() int { return len(s.drop) + len(s.mark) }
