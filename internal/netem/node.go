// Package netem emulates the tested network: links with serialization and
// propagation delay, bounded queues with ECN marking, output-queued
// switches, and fault-injection hooks.
//
// Everything Marlin sends traverses netem components, and everything netem
// delivers comes back to Marlin's device models, mirroring the paper's
// testbed where the tester's 12 ports face a network of real switches.
package netem

import "marlin/internal/packet"

// Node consumes packets delivered by a Link. Marlin device ports, emulated
// switches, and measurement sinks all implement Node.
type Node interface {
	Receive(p *packet.Packet)
}

// NodeFunc adapts a function to the Node interface.
type NodeFunc func(p *packet.Packet)

// Receive calls f(p).
func (f NodeFunc) Receive(p *packet.Packet) { f(p) }

// Sink counts and discards everything it receives; useful as a measurement
// endpoint and in tests.
type Sink struct {
	Packets uint64
	Bytes   uint64
	// Last holds the most recently received packet.
	Last *packet.Packet
}

// Receive implements Node.
func (s *Sink) Receive(p *packet.Packet) {
	s.Packets++
	s.Bytes += uint64(p.Size)
	s.Last = p
}
