package netem

import (
	"math/bits"

	"marlin/internal/aqm"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// ECNConfig controls congestion marking at a queue.
//
// With KMin == KMax the queue performs DCTCP-style step marking: every
// ECN-capable packet that arrives while the backlog is at least KMin bytes
// is marked CE. With KMin < KMax the queue performs RED-style probabilistic
// marking, ramping the mark probability linearly from 0 at KMin to PMax at
// KMax and marking everything above KMax.
type ECNConfig struct {
	// Enable turns marking on.
	Enable bool
	// KMin is the backlog (bytes) where marking begins.
	KMin int
	// KMax is the backlog (bytes) where the probability reaches PMax.
	KMax int
	// PMax is the marking probability at KMax (0..1].
	PMax float64
}

// StepMarking returns a DCTCP-style step-marking config with threshold k
// expressed in packets of the given size.
func StepMarking(kPackets, packetSize int) ECNConfig {
	k := kPackets * packetSize
	return ECNConfig{Enable: true, KMin: k, KMax: k, PMax: 1}
}

// QueueStats are the counters a drop-tail queue maintains; the control
// plane reads them as "hardware registers".
type QueueStats struct {
	EnqPackets  uint64
	EnqBytes    uint64
	DeqPackets  uint64
	DeqBytes    uint64
	Drops       uint64
	DropBytes   uint64
	ECNMarks    uint64
	MaxBacklogB int
}

// AQMStats are the extra counters an AQM-managed queue maintains on top of
// QueueStats. AQM marks and drops are also folded into QueueStats.ECNMarks
// and QueueStats.Drops so existing aggregations keep working; these break
// out the discipline's share and the per-band sojourn distribution.
type AQMStats struct {
	// Discipline is the managing discipline's name.
	Discipline string
	// Marks counts CE marks applied on the discipline's verdict.
	Marks uint64
	// Drops counts packets the discipline discarded, including Mark
	// verdicts that fell back to drops because the packet was Not-ECT or
	// marking was suppressed (the ecnoff fault).
	Drops uint64
	// BandDeqPackets counts delivered packets per band (band 1 is only
	// used by dual-queue disciplines).
	BandDeqPackets [aqm.MaxBands]uint64
	// SojournP99Us is the per-band 99th-percentile queueing delay of
	// delivered packets, in microseconds.
	SojournP99Us [aqm.MaxBands]float64
}

// pktFIFO is one queue band: a pointer FIFO with amortized-O(1) compaction.
type pktFIFO struct {
	head  int
	buf   []*packet.Packet
	bytes int
}

func (f *pktFIFO) push(p *packet.Packet) {
	f.buf = append(f.buf, p)
	f.bytes += p.Size
}

func (f *pktFIFO) pop() *packet.Packet {
	if f.head >= len(f.buf) {
		return nil
	}
	p := f.buf[f.head]
	f.buf[f.head] = nil
	f.head++
	// Compact once the dead prefix dominates, keeping amortized O(1).
	if f.head > 64 && f.head*2 >= len(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		f.buf = f.buf[:n]
		f.head = 0
	}
	f.bytes -= p.Size
	return p
}

func (f *pktFIFO) peek() *packet.Packet {
	if f.head >= len(f.buf) {
		return nil
	}
	return f.buf[f.head]
}

func (f *pktFIFO) length() int { return len(f.buf) - f.head }

// sojournHist is a fixed-size quarter-octave log histogram of sojourn
// times: no allocation on the record path, deterministic percentile
// readout. Buckets hold raw sim.Duration (picosecond) samples.
type sojournHist struct {
	counts [256]uint64
	total  uint64
}

// bucketOf maps a non-negative value to its quarter-octave bucket: the
// exponent of the leading bit plus the next two mantissa bits, so adjacent
// buckets are 25% apart.
func bucketOf(x uint64) int {
	if x < 4 {
		return int(x)
	}
	exp := bits.Len64(x) - 1
	frac := (x >> (exp - 2)) & 3
	return exp<<2 | int(frac)
}

// lowerBound inverts bucketOf: the smallest value in the bucket.
func lowerBound(idx int) uint64 {
	if idx < 4 {
		return uint64(idx)
	}
	exp := idx >> 2
	frac := uint64(idx & 3)
	return (4 | frac) << (exp - 2)
}

func (h *sojournHist) add(d sim.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(uint64(d))]++
	h.total++
}

// quantile returns the lower bound of the bucket holding the q-quantile
// sample, or zero when empty.
func (h *sojournHist) quantile(q float64) sim.Duration {
	if h.total == 0 {
		return 0
	}
	rank := uint64(q * float64(h.total))
	if rank >= h.total {
		rank = h.total - 1
	}
	var seen uint64
	for i, n := range h.counts {
		seen += n
		if seen > rank {
			return sim.Duration(lowerBound(i))
		}
	}
	return 0
}

// Queue is a byte-bounded FIFO with optional ECN marking and an optional
// AQM discipline. It is the buffering stage in front of every emulated
// link. Without a discipline it is a plain drop-tail queue with threshold
// ECN; with one, admission and delivery run through the discipline's
// OnEnqueue/OnDequeue verdicts and dual-queue disciplines split the
// backlog into per-band FIFOs.
type Queue struct {
	// capacity bounds the backlog; zero means a 256 KiB default.
	capacity int
	ecn      ECNConfig
	rng      *sim.Rand
	// suppressMark disables ECN marking without touching the configured
	// thresholds — an "ecnoff" fault that is exactly reversible. It
	// applies to AQM verdicts too: a Mark from the discipline degrades to
	// a drop, like a real AQM on a switch with ECN disabled.
	suppressMark bool

	// disc, when non-nil, replaces threshold ECN with an AQM discipline;
	// clock supplies sim time for sojourn stamping and controller steps.
	disc   aqm.AQM
	clock  func() sim.Time
	nbands int

	bands [aqm.MaxBands]pktFIFO
	bytes int
	stats QueueStats

	aqmMarks, aqmDrops uint64
	bandDeq            [aqm.MaxBands]uint64
	soj                [aqm.MaxBands]sojournHist

	// onChange is invoked with the new backlog after every enqueue and
	// dequeue; the PFC controller uses it to watch watermarks.
	onChange func(bytes int)
}

// OnBacklogChange installs a backlog observer (at most one).
func (q *Queue) OnBacklogChange(fn func(bytes int)) { q.onChange = fn }

// DefaultQueueCapacity is the per-port buffer used when none is configured;
// sized like a shallow data-center switch port allocation.
const DefaultQueueCapacity = 256 << 10

// NewQueue creates a queue with the given byte capacity (0 selects
// DefaultQueueCapacity) and marking config. rng is used only for RED-style
// probabilistic marking and may be nil for step marking.
func NewQueue(capacityBytes int, ecn ECNConfig, rng *sim.Rand) *Queue {
	if capacityBytes <= 0 {
		capacityBytes = DefaultQueueCapacity
	}
	if rng == nil {
		rng = sim.NewRand(0x51ed)
	}
	return &Queue{capacity: capacityBytes, ecn: ecn, rng: rng, nbands: 1}
}

// SetAQM attaches an AQM discipline and the sim clock that drives it.
// The discipline supersedes the queue's threshold-ECN config; passing nil
// restores plain drop-tail behaviour.
func (q *Queue) SetAQM(disc aqm.AQM, clock func() sim.Time) {
	q.disc, q.clock = disc, clock
	q.nbands = 1
	if disc != nil {
		q.nbands = disc.Bands()
	}
}

// AQM returns the attached discipline, or nil.
func (q *Queue) AQM() aqm.AQM { return q.disc }

// view snapshots the backlog for the discipline.
func (q *Queue) view() aqm.QueueView {
	v := aqm.QueueView{Bytes: q.bytes, Packets: q.Len(), Capacity: q.capacity}
	for b := 0; b < q.nbands; b++ {
		v.BandBytes[b] = q.bands[b].bytes
		v.BandPackets[b] = q.bands[b].length()
		if p := q.bands[b].peek(); p != nil {
			v.HeadEnqAt[b] = p.EnqAt
		}
	}
	return v
}

// Enqueue appends p, applying drop-tail admission and either threshold ECN
// or the attached discipline's verdict. It reports whether the packet was
// admitted; the caller keeps ownership (and must Release) when it was not.
func (q *Queue) Enqueue(p *packet.Packet) bool {
	if q.bytes+p.Size > q.capacity {
		q.dropStats(p)
		return false
	}
	if q.disc == nil {
		if q.shouldMark(p) {
			p.Flags |= packet.FlagCE
			q.stats.ECNMarks++
		}
		q.admit(p, 0)
		return true
	}
	band := q.disc.Classify(p)
	now := q.clock()
	switch q.disc.OnEnqueue(p, band, q.view(), now) {
	case aqm.Drop:
		q.dropStats(p)
		q.aqmDrops++
		return false
	case aqm.Mark:
		if !q.applyMark(p) {
			q.dropStats(p)
			q.aqmDrops++
			return false
		}
	}
	p.EnqAt = now
	q.admit(p, band)
	return true
}

func (q *Queue) admit(p *packet.Packet, band int) {
	q.bands[band].push(p)
	q.bytes += p.Size
	q.stats.EnqPackets++
	q.stats.EnqBytes += uint64(p.Size)
	if q.bytes > q.stats.MaxBacklogB {
		q.stats.MaxBacklogB = q.bytes
	}
	if q.onChange != nil {
		q.onChange(q.bytes)
	}
}

func (q *Queue) dropStats(p *packet.Packet) {
	q.stats.Drops++
	q.stats.DropBytes += uint64(p.Size)
}

// applyMark resolves a discipline Mark verdict: CE when the packet is
// ECN-capable and marking is not suppressed, otherwise the caller must
// drop. This is the ecnoff degradation path.
func (q *Queue) applyMark(p *packet.Packet) bool {
	if q.suppressMark || !p.Flags.Has(packet.FlagECNCapable) {
		return false
	}
	p.Flags |= packet.FlagCE
	q.stats.ECNMarks++
	q.aqmMarks++
	return true
}

// SuppressMarking toggles a temporary override that disables ECN marking
// while leaving the configured thresholds untouched; clearing it restores
// the original behavior exactly. Used by the ecnoff fault.
func (q *Queue) SuppressMarking(suppress bool) { q.suppressMark = suppress }

// MarkingSuppressed reports whether the ecnoff override is active.
func (q *Queue) MarkingSuppressed() bool { return q.suppressMark }

func (q *Queue) shouldMark(p *packet.Packet) bool {
	if !q.ecn.Enable || q.suppressMark || !p.Flags.Has(packet.FlagECNCapable) {
		return false
	}
	backlog := q.bytes
	switch {
	case backlog < q.ecn.KMin:
		return false
	case backlog >= q.ecn.KMax:
		return q.ecn.PMax >= 1 || q.rng.Float64() < q.ecn.PMax
	default:
		frac := float64(backlog-q.ecn.KMin) / float64(q.ecn.KMax-q.ecn.KMin)
		return q.rng.Float64() < frac*q.ecn.PMax
	}
}

// Dequeue removes and returns the oldest packet (per the discipline's band
// scheduler, if any), or nil if empty. Discipline head drops (CoDel's
// Drop verdict, or a Mark that cannot be honoured) release the victim and
// continue with the next packet, so a non-nil return is always deliverable.
func (q *Queue) Dequeue() *packet.Packet {
	if q.disc == nil {
		p := q.bands[0].pop()
		if p == nil {
			return nil
		}
		q.bytes -= p.Size
		q.deliverStats(p)
		return p
	}
	now := q.clock()
	for {
		band := 0
		if q.nbands > 1 {
			band = q.disc.PickBand(q.view(), now)
			if q.bands[band].length() == 0 {
				band = 1 - band
			}
		}
		p := q.bands[band].pop()
		if p == nil {
			return nil
		}
		q.bytes -= p.Size
		sojourn := now.Sub(p.EnqAt)
		verdict := q.disc.OnDequeue(p, band, sojourn, q.view(), now)
		if verdict == aqm.Mark && !q.applyMark(p) {
			verdict = aqm.Drop
		}
		if verdict == aqm.Drop {
			q.dropStats(p)
			q.aqmDrops++
			if q.onChange != nil {
				q.onChange(q.bytes)
			}
			p.Release()
			continue
		}
		q.soj[band].add(sojourn)
		q.bandDeq[band]++
		q.deliverStats(p)
		return p
	}
}

func (q *Queue) deliverStats(p *packet.Packet) {
	q.stats.DeqPackets++
	q.stats.DeqBytes += uint64(p.Size)
	if q.onChange != nil {
		q.onChange(q.bytes)
	}
}

// Len returns the number of queued packets.
func (q *Queue) Len() int { return q.bands[0].length() + q.bands[1].length() }

// Bytes returns the queued backlog in bytes.
func (q *Queue) Bytes() int { return q.bytes }

// Capacity returns the configured byte capacity.
func (q *Queue) Capacity() int { return q.capacity }

// Stats returns a snapshot of the queue counters.
func (q *Queue) Stats() QueueStats { return q.stats }

// AQMStats returns the discipline counters, or nil when the queue has no
// attached discipline.
func (q *Queue) AQMStats() *AQMStats {
	if q.disc == nil {
		return nil
	}
	s := &AQMStats{
		Discipline:     q.disc.Name(),
		Marks:          q.aqmMarks,
		Drops:          q.aqmDrops,
		BandDeqPackets: q.bandDeq,
	}
	for b := 0; b < q.nbands; b++ {
		s.SojournP99Us[b] = q.soj[b].quantile(0.99).Microseconds()
	}
	return s
}
