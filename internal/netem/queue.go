package netem

import (
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// ECNConfig controls congestion marking at a queue.
//
// With KMin == KMax the queue performs DCTCP-style step marking: every
// ECN-capable packet that arrives while the backlog is at least KMin bytes
// is marked CE. With KMin < KMax the queue performs RED-style probabilistic
// marking, ramping the mark probability linearly from 0 at KMin to PMax at
// KMax and marking everything above KMax.
type ECNConfig struct {
	// Enable turns marking on.
	Enable bool
	// KMin is the backlog (bytes) where marking begins.
	KMin int
	// KMax is the backlog (bytes) where the probability reaches PMax.
	KMax int
	// PMax is the marking probability at KMax (0..1].
	PMax float64
}

// StepMarking returns a DCTCP-style step-marking config with threshold k
// expressed in packets of the given size.
func StepMarking(kPackets, packetSize int) ECNConfig {
	k := kPackets * packetSize
	return ECNConfig{Enable: true, KMin: k, KMax: k, PMax: 1}
}

// QueueStats are the counters a drop-tail queue maintains; the control
// plane reads them as "hardware registers".
type QueueStats struct {
	EnqPackets  uint64
	EnqBytes    uint64
	DeqPackets  uint64
	DeqBytes    uint64
	Drops       uint64
	DropBytes   uint64
	ECNMarks    uint64
	MaxBacklogB int
}

// Queue is a byte-bounded FIFO with optional ECN marking. It is the
// buffering stage in front of every emulated link.
type Queue struct {
	// CapacityBytes bounds the backlog; zero means a 256 KiB default.
	capacity int
	ecn      ECNConfig
	rng      *sim.Rand
	// suppressMark disables ECN marking without touching the configured
	// thresholds — an "ecnoff" fault that is exactly reversible.
	suppressMark bool

	head  int
	buf   []*packet.Packet
	bytes int
	stats QueueStats

	// onChange is invoked with the new backlog after every enqueue and
	// dequeue; the PFC controller uses it to watch watermarks.
	onChange func(bytes int)
}

// OnBacklogChange installs a backlog observer (at most one).
func (q *Queue) OnBacklogChange(fn func(bytes int)) { q.onChange = fn }

// DefaultQueueCapacity is the per-port buffer used when none is configured;
// sized like a shallow data-center switch port allocation.
const DefaultQueueCapacity = 256 << 10

// NewQueue creates a queue with the given byte capacity (0 selects
// DefaultQueueCapacity) and marking config. rng is used only for RED-style
// probabilistic marking and may be nil for step marking.
func NewQueue(capacityBytes int, ecn ECNConfig, rng *sim.Rand) *Queue {
	if capacityBytes <= 0 {
		capacityBytes = DefaultQueueCapacity
	}
	if rng == nil {
		rng = sim.NewRand(0x51ed)
	}
	return &Queue{capacity: capacityBytes, ecn: ecn, rng: rng}
}

// Enqueue appends p, applying drop-tail admission and ECN marking against
// the backlog at arrival. It reports whether the packet was admitted.
func (q *Queue) Enqueue(p *packet.Packet) bool {
	if q.bytes+p.Size > q.capacity {
		q.stats.Drops++
		q.stats.DropBytes += uint64(p.Size)
		return false
	}
	if q.shouldMark(p) {
		p.Flags |= packet.FlagCE
		q.stats.ECNMarks++
	}
	q.buf = append(q.buf, p)
	q.bytes += p.Size
	q.stats.EnqPackets++
	q.stats.EnqBytes += uint64(p.Size)
	if q.bytes > q.stats.MaxBacklogB {
		q.stats.MaxBacklogB = q.bytes
	}
	if q.onChange != nil {
		q.onChange(q.bytes)
	}
	return true
}

// SuppressMarking toggles a temporary override that disables ECN marking
// while leaving the configured thresholds untouched; clearing it restores
// the original behavior exactly. Used by the ecnoff fault.
func (q *Queue) SuppressMarking(suppress bool) { q.suppressMark = suppress }

// MarkingSuppressed reports whether the ecnoff override is active.
func (q *Queue) MarkingSuppressed() bool { return q.suppressMark }

func (q *Queue) shouldMark(p *packet.Packet) bool {
	if !q.ecn.Enable || q.suppressMark || !p.Flags.Has(packet.FlagECNCapable) {
		return false
	}
	backlog := q.bytes
	switch {
	case backlog < q.ecn.KMin:
		return false
	case backlog >= q.ecn.KMax:
		return q.ecn.PMax >= 1 || q.rng.Float64() < q.ecn.PMax
	default:
		frac := float64(backlog-q.ecn.KMin) / float64(q.ecn.KMax-q.ecn.KMin)
		return q.rng.Float64() < frac*q.ecn.PMax
	}
}

// Dequeue removes and returns the oldest packet, or nil if empty.
func (q *Queue) Dequeue() *packet.Packet {
	if q.head >= len(q.buf) {
		return nil
	}
	p := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	// Compact once the dead prefix dominates, keeping amortized O(1).
	if q.head > 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.bytes -= p.Size
	q.stats.DeqPackets++
	q.stats.DeqBytes += uint64(p.Size)
	if q.onChange != nil {
		q.onChange(q.bytes)
	}
	return p
}

// Len returns the number of queued packets.
func (q *Queue) Len() int { return len(q.buf) - q.head }

// Bytes returns the queued backlog in bytes.
func (q *Queue) Bytes() int { return q.bytes }

// Capacity returns the configured byte capacity.
func (q *Queue) Capacity() int { return q.capacity }

// Stats returns a snapshot of the queue counters.
func (q *Queue) Stats() QueueStats { return q.stats }
