package netem

import (
	"testing"

	"marlin/internal/aqm"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// aqmQueue builds a queue managed by the given discipline spec, driven by
// a test-controlled clock.
func aqmQueue(t *testing.T, specSrc string, capacity int, now *sim.Time) *Queue {
	t.Helper()
	s, err := aqm.ParseSpec(specSrc)
	if err != nil {
		t.Fatal(err)
	}
	q := NewQueue(capacity, ECNConfig{}, sim.NewRand(1))
	q.SetAQM(s.Build(q.Capacity(), sim.NewRand(7)), func() sim.Time { return *now })
	return q
}

func drainAll(q *Queue) int {
	n := 0
	for {
		p := q.Dequeue()
		if p == nil {
			return n
		}
		p.Release()
		n++
	}
}

// forcePI2 saturates a PI2 discipline's controller so every arrival is
// marked: hold a large standing delay across many update intervals.
func forcePI2(q *Queue, now *sim.Time) {
	for i := 0; i < 400; i++ {
		*now = now.Add(16 * sim.Millisecond)
		p := packet.NewData(1, uint32(i), 1500, *now)
		if !q.Enqueue(p) {
			p.Release()
		}
		if q.Len() > 8 {
			if d := q.Dequeue(); d != nil {
				d.Release()
			}
		}
		// Hold packets long enough that head delay stays far above target.
	}
}

// TestAQMMarkResolvesToCE: a discipline Mark verdict CE-marks ECN-capable
// packets and counts in both QueueStats.ECNMarks and AQMStats.Marks.
func TestAQMMarkResolvesToCE(t *testing.T) {
	var now sim.Time
	q := aqmQueue(t, "pi2", 1<<20, &now)
	forcePI2(q, &now)
	st := q.Stats()
	as := q.AQMStats()
	if as == nil || as.Discipline != "pi2" {
		t.Fatalf("AQMStats = %+v", as)
	}
	if as.Marks == 0 {
		t.Fatal("saturated PI2 queue produced no CE marks")
	}
	if st.ECNMarks != as.Marks {
		t.Fatalf("ECNMarks %d != AQM marks %d", st.ECNMarks, as.Marks)
	}
	drainAll(q)
}

// TestAQMMarkFallsBackToDrop is the ecnoff-interplay regression at the
// queue level: with marking suppressed, a PI2 Mark verdict must become a
// drop (no CE anywhere), and lifting the suppression restores marking.
func TestAQMMarkFallsBackToDrop(t *testing.T) {
	packet.SetAccounting(true)
	defer packet.SetAccounting(false)
	var now sim.Time
	q := aqmQueue(t, "pi2", 1<<20, &now)
	forcePI2(q, &now)
	drainAll(q)
	base := q.Stats()

	q.SuppressMarking(true)
	for i := 0; i < 50; i++ {
		now = now.Add(16 * sim.Millisecond)
		p := packet.NewData(9, uint32(i), 1500, now)
		if q.Enqueue(p) {
			if p.Flags.Has(packet.FlagCE) {
				t.Fatal("CE mark applied while marking suppressed")
			}
		} else {
			p.Release()
		}
	}
	mid := q.Stats()
	if mid.ECNMarks != base.ECNMarks {
		t.Fatalf("marks advanced under ecnoff: %d -> %d", base.ECNMarks, mid.ECNMarks)
	}
	if mid.Drops == base.Drops {
		t.Fatal("suppressed marks did not degrade to drops")
	}

	q.SuppressMarking(false)
	sawCE := false
	for i := 0; i < 50 && !sawCE; i++ {
		now = now.Add(16 * sim.Millisecond)
		p := packet.NewData(9, uint32(100+i), 1500, now)
		if q.Enqueue(p) {
			sawCE = p.Flags.Has(packet.FlagCE)
		} else {
			p.Release()
		}
	}
	if !sawCE {
		t.Fatal("marking did not resume after the ecnoff window closed")
	}
	drainAll(q)
	if live := packet.Live(); live != 0 {
		t.Fatalf("leaked %d packets through AQM drop paths", live)
	}
}

// TestAQMNotECTDegradesToDrop: Not-ECT traffic can never be CE-marked, so
// discipline marks become drops — the classic "ECN-incapable flows take
// the losses" behaviour.
func TestAQMNotECTDegradesToDrop(t *testing.T) {
	var now sim.Time
	q := aqmQueue(t, "pi2", 1<<20, &now)
	forcePI2(q, &now)
	drainAll(q)
	base := q.Stats()
	for i := 0; i < 50; i++ {
		now = now.Add(16 * sim.Millisecond)
		p := packet.NewDataECT(3, uint32(i), 1500, now, packet.NotECT)
		if !q.Enqueue(p) {
			p.Release()
		}
	}
	st := q.Stats()
	if st.ECNMarks != base.ECNMarks {
		t.Fatal("Not-ECT packet was CE-marked")
	}
	if st.Drops == base.Drops {
		t.Fatal("Not-ECT arrivals under congestion were not dropped")
	}
	drainAll(q)
}

// TestAQMDualQueueBands: DualPI2 splits ECT(1) into the L4S band, keeps
// per-band accounting, and the time-shifted FIFO prefers the L4S head.
func TestAQMDualQueueBands(t *testing.T) {
	var now sim.Time
	q := aqmQueue(t, "dualpi2:shift=1ms", 1<<20, &now)

	classic := packet.NewDataECT(1, 0, 1000, 0, packet.ECT0)
	if !q.Enqueue(classic) {
		t.Fatal("classic enqueue refused")
	}
	now = now.Add(500 * sim.Microsecond) // within the shift
	l4s := packet.NewDataECT(2, 0, 1000, 0, packet.ECT1)
	if !q.Enqueue(l4s) {
		t.Fatal("l4s enqueue refused")
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	now = now.Add(100 * sim.Microsecond)
	first := q.Dequeue()
	if first == nil || first.ECT() != packet.ECT1 {
		t.Fatalf("time-shifted FIFO served %v first, want the ECT(1) packet", first.ECT())
	}
	second := q.Dequeue()
	if second == nil || second.ECT() != packet.ECT0 {
		t.Fatal("classic packet lost")
	}
	first.Release()
	second.Release()

	as := q.AQMStats()
	if as.BandDeqPackets[aqm.BandClassic] != 1 || as.BandDeqPackets[aqm.BandL4S] != 1 {
		t.Fatalf("band accounting = %v", as.BandDeqPackets)
	}
}

// TestAQMSojournPercentile: the per-band sojourn histogram reports a p99
// in the right magnitude for a known standing delay.
func TestAQMSojournPercentile(t *testing.T) {
	var now sim.Time
	q := aqmQueue(t, "codel:target=5ms,interval=100ms", 1<<20, &now)
	for i := 0; i < 100; i++ {
		p := packet.NewData(1, uint32(i), 1000, now)
		if !q.Enqueue(p) {
			t.Fatal("enqueue refused")
		}
		now = now.Add(10 * sim.Microsecond)
	}
	// Every packet waits ~2ms before delivery.
	now = now.Add(2 * sim.Millisecond)
	drainAll(q)
	p99 := q.AQMStats().SojournP99Us[0]
	if p99 < 1500 || p99 > 4500 {
		t.Fatalf("sojourn p99 = %vus, want ~2000-3000us", p99)
	}
}

// TestAQMCoDelHeadDrop: Not-ECT traffic under a persistently standing
// CoDel queue is head-dropped inside Dequeue, and the next deliverable
// packet comes out instead.
func TestAQMCoDelHeadDrop(t *testing.T) {
	packet.SetAccounting(true)
	defer packet.SetAccounting(false)
	var now sim.Time
	q := aqmQueue(t, "codel:target=1ms,interval=10ms", 1<<20, &now)
	for i := 0; i < 200; i++ {
		p := packet.NewDataECT(1, uint32(i), 1000, now, packet.NotECT)
		if !q.Enqueue(p) {
			p.Release()
		}
	}
	// Dequeue slowly with a standing 50ms+ sojourn: CoDel enters its
	// dropping state and sheds heads.
	delivered := 0
	for i := 0; i < 200; i++ {
		now = now.Add(5 * sim.Millisecond)
		p := q.Dequeue()
		if p == nil {
			break
		}
		if p.Flags.Has(packet.FlagCE) {
			t.Fatal("Not-ECT packet came out CE-marked")
		}
		delivered++
		p.Release()
	}
	st := q.Stats()
	if as := q.AQMStats(); as.Drops == 0 || st.Drops != as.Drops {
		t.Fatalf("head drops = %d (queue %d), want > 0 and equal", as.Drops, st.Drops)
	}
	if delivered+int(st.Drops) != 200 {
		t.Fatalf("conservation: delivered %d + drops %d != 200", delivered, st.Drops)
	}
	if live := packet.Live(); live != 0 {
		t.Fatalf("leaked %d packets in head-drop path", live)
	}
}

// TestAQMEnqueueZeroAlloc is the hot-path gate at the queue level: steady
// state enqueue+dequeue through a discipline must not allocate.
func TestAQMEnqueueZeroAlloc(t *testing.T) {
	for _, spec := range []string{"red", "pi2", "dualpi2"} {
		var now sim.Time
		q := aqmQueue(t, spec, 1<<20, &now)
		// Warm the band buffers past any append growth.
		for i := 0; i < 256; i++ {
			p := packet.NewDataECT(1, uint32(i), 1000, now, packet.ECT(i%3))
			if !q.Enqueue(p) {
				p.Release()
			}
		}
		drainAll(q)
		// One recycled packet, so the pool itself stays out of the
		// measurement: under no congestion every verdict is Pass and the
		// packet round-trips enqueue -> dequeue each iteration.
		p := packet.NewDataECT(1, 0, 1000, 0, packet.ECT0)
		i := 0
		allocs := testing.AllocsPerRun(500, func() {
			now = now.Add(10 * sim.Microsecond)
			p.SetECT(packet.ECT(i % 3))
			p.Flags &^= packet.FlagCE
			i++
			if q.Enqueue(p) {
				q.Dequeue()
			}
		})
		p.Release()
		if allocs != 0 {
			t.Errorf("%s: %v allocs/op through the AQM queue, want 0", spec, allocs)
		}
	}
}
