package aqm

import (
	"fmt"
	"strings"

	"marlin/internal/sim"
	"marlin/internal/spec"
)

// Kind selects a discipline.
type Kind uint8

// Disciplines.
const (
	KindNone Kind = iota
	KindRED
	KindPIE
	KindCoDel
	KindPI2
	KindDualPI2
)

// String returns the spec-language name of the discipline.
func (k Kind) String() string {
	switch k {
	case KindRED:
		return "red"
	case KindPIE:
		return "pie"
	case KindCoDel:
		return "codel"
	case KindPI2:
		return "pi2"
	case KindDualPI2:
		return "dualpi2"
	default:
		return "none"
	}
}

// Spec is a parsed, validated discipline configuration — a plain value
// that travels through controlplane.Spec and core.Config and is turned
// into live per-queue state by Build. Zero value means "no AQM".
type Spec struct {
	Kind Kind

	// RED knobs. Thresholds of zero scale to the queue capacity at Build
	// time (capacity/6 and capacity/2).
	MinTh   int          // EWMA threshold where marking starts, bytes
	MaxTh   int          // EWMA threshold of certain marking, bytes
	MaxP    float64      // mark probability at MaxTh
	Weight  float64      // EWMA gain wq
	IdlePkt sim.Duration // virtual packet time for idle-period EWMA decay

	// Delay-target knobs (PIE, CoDel, PI2, DualPI2).
	Target   sim.Duration // standing-delay setpoint
	Interval sim.Duration // CoDel sliding window
	TUpdate  sim.Duration // PI controller period (PIE, PI2, DualPI2)
	Alpha    float64      // PI integral gain, 1/s
	Beta     float64      // PI proportional gain, 1/s
	ECNTh    float64      // PIE drop-even-if-ECN safeguard threshold

	// DualPI2 knobs.
	Coupling float64      // k: L4S mark probability is k·p'
	Step     sim.Duration // L4S sojourn step-mark threshold
	Shift    sim.Duration // L4S head start in the time-shifted FIFO
}

// Enabled reports whether the spec names a discipline.
func (s Spec) Enabled() bool { return s.Kind != KindNone }

// ParseSpec compiles a textual AQM spec: a discipline name, optionally
// followed by ':' and comma-separated key=value overrides — the same shape
// as faults.ParseSpec and workload.ParseSpec entries:
//
//	red:min=30000,max=90000,maxp=0.1,w=0.002
//	pie:target=15ms,tupdate=15ms,alpha=0.125,beta=1.25
//	codel:target=5ms,interval=100ms
//	pi2:target=15ms,tupdate=16ms,alpha=0.3125,beta=3.125
//	dualpi2:target=15ms,coupling=2,step=1ms,shift=1ms
//
// A bare name ("pi2") takes every default; "none" or the empty string
// disables AQM. Durations use Go syntax ("15ms", "250us").
func ParseSpec(src string) (Spec, error) {
	src = strings.TrimSpace(src)
	name, body, hasBody := strings.Cut(src, ":")
	s, err := defaults(name)
	if err != nil || !hasBody {
		return s, err
	}
	pairs, perr := spec.Pairs(body)
	if perr != nil {
		return Spec{}, fmt.Errorf("aqm: %q: %w", src, perr)
	}
	for _, kv := range pairs {
		if err := s.set(kv); err != nil {
			return Spec{}, fmt.Errorf("aqm: %q: %w", src, err)
		}
	}
	if err := s.validate(); err != nil {
		return Spec{}, fmt.Errorf("aqm: %q: %w", src, err)
	}
	return s, nil
}

// defaults returns the per-discipline default parameters: RED from the
// classic recommendations, PIE from RFC 8033, CoDel from RFC 8289, and
// PI2/DualPI2 from RFC 9332.
func defaults(name string) (Spec, error) {
	switch name {
	case "", "none":
		return Spec{}, nil
	case "red":
		return Spec{Kind: KindRED, MaxP: 0.1, Weight: 0.002, IdlePkt: sim.Micros(1)}, nil
	case "pie":
		return Spec{
			Kind: KindPIE, Target: 15 * sim.Millisecond, TUpdate: 15 * sim.Millisecond,
			Alpha: 0.125, Beta: 1.25, ECNTh: 0.1,
		}, nil
	case "codel":
		return Spec{Kind: KindCoDel, Target: 5 * sim.Millisecond, Interval: 100 * sim.Millisecond}, nil
	case "pi2":
		return Spec{
			Kind: KindPI2, Target: 15 * sim.Millisecond, TUpdate: 16 * sim.Millisecond,
			Alpha: 0.3125, Beta: 3.125,
		}, nil
	case "dualpi2":
		return Spec{
			Kind: KindDualPI2, Target: 15 * sim.Millisecond, TUpdate: 16 * sim.Millisecond,
			Alpha: 0.3125, Beta: 3.125,
			Coupling: 2, Step: sim.Millisecond, Shift: sim.Millisecond,
		}, nil
	default:
		return Spec{}, fmt.Errorf("aqm: unknown discipline %q", name)
	}
}

// set applies one key=value override, rejecting keys foreign to the
// discipline so a typo cannot silently configure nothing.
func (s *Spec) set(kv spec.Pair) error {
	var err error
	ok := true
	switch kv.Key {
	case "min":
		s.MinTh, err = spec.Int("min", kv.Val)
		ok = s.Kind == KindRED
	case "max":
		s.MaxTh, err = spec.Int("max", kv.Val)
		ok = s.Kind == KindRED
	case "maxp":
		s.MaxP, err = spec.Float("maxp", kv.Val)
		ok = s.Kind == KindRED
	case "w":
		s.Weight, err = spec.Float("w", kv.Val)
		ok = s.Kind == KindRED
	case "target":
		s.Target, err = spec.Duration(kv.Val)
		ok = s.Kind != KindRED
	case "interval":
		s.Interval, err = spec.Duration(kv.Val)
		ok = s.Kind == KindCoDel
	case "tupdate":
		s.TUpdate, err = spec.Duration(kv.Val)
		ok = s.Kind == KindPIE || s.Kind == KindPI2 || s.Kind == KindDualPI2
	case "alpha":
		s.Alpha, err = spec.Float("alpha", kv.Val)
		ok = s.Kind == KindPIE || s.Kind == KindPI2 || s.Kind == KindDualPI2
	case "beta":
		s.Beta, err = spec.Float("beta", kv.Val)
		ok = s.Kind == KindPIE || s.Kind == KindPI2 || s.Kind == KindDualPI2
	case "ecnth":
		s.ECNTh, err = spec.Float("ecnth", kv.Val)
		ok = s.Kind == KindPIE
	case "coupling":
		s.Coupling, err = spec.Float("coupling", kv.Val)
		ok = s.Kind == KindDualPI2
	case "step":
		s.Step, err = spec.Duration(kv.Val)
		ok = s.Kind == KindDualPI2
	case "shift":
		s.Shift, err = spec.Duration(kv.Val)
		ok = s.Kind == KindDualPI2
	default:
		return fmt.Errorf("unexpected %q for %s", kv.Key, s.Kind)
	}
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("unexpected %q for %s", kv.Key, s.Kind)
	}
	return nil
}

func (s Spec) validate() error {
	switch {
	case s.Kind == KindRED && (s.MaxP <= 0 || s.MaxP > 1):
		return fmt.Errorf("maxp must be in (0,1]")
	case s.Kind == KindRED && (s.Weight <= 0 || s.Weight >= 1):
		return fmt.Errorf("w must be in (0,1)")
	case s.Kind == KindRED && s.MinTh > 0 && s.MaxTh > 0 && s.MinTh >= s.MaxTh:
		return fmt.Errorf("min must be below max")
	case s.Kind == KindCoDel && s.Interval <= 0:
		return fmt.Errorf("interval must be positive")
	case s.Kind != KindNone && s.Kind != KindRED && s.Target <= 0:
		return fmt.Errorf("target must be positive")
	case (s.Kind == KindPIE || s.Kind == KindPI2 || s.Kind == KindDualPI2) && s.TUpdate <= 0:
		return fmt.Errorf("tupdate must be positive")
	case s.Kind == KindDualPI2 && s.Coupling <= 0:
		return fmt.Errorf("coupling must be positive")
	}
	return nil
}

// String renders the spec the way ParseSpec reads it, with the discipline's
// full parameter set spelled out.
func (s Spec) String() string {
	switch s.Kind {
	case KindRED:
		return fmt.Sprintf("red:min=%d,max=%d,maxp=%g,w=%g", s.MinTh, s.MaxTh, s.MaxP, s.Weight)
	case KindPIE:
		return fmt.Sprintf("pie:target=%s,tupdate=%s,alpha=%g,beta=%g,ecnth=%g",
			s.Target, s.TUpdate, s.Alpha, s.Beta, s.ECNTh)
	case KindCoDel:
		return fmt.Sprintf("codel:target=%s,interval=%s", s.Target, s.Interval)
	case KindPI2:
		return fmt.Sprintf("pi2:target=%s,tupdate=%s,alpha=%g,beta=%g",
			s.Target, s.TUpdate, s.Alpha, s.Beta)
	case KindDualPI2:
		return fmt.Sprintf("dualpi2:target=%s,tupdate=%s,alpha=%g,beta=%g,coupling=%g,step=%s,shift=%s",
			s.Target, s.TUpdate, s.Alpha, s.Beta, s.Coupling, s.Step, s.Shift)
	default:
		return "none"
	}
}

// Build instantiates the discipline for one queue of the given byte
// capacity. The rng must be a pre-split per-queue stream (sim.Rand.Split
// at wiring time) so marking decisions are byte-identical regardless of
// how many fleet workers run concurrently. Returns nil for KindNone.
func (s Spec) Build(capacityBytes int, rng *sim.Rand) AQM {
	switch s.Kind {
	case KindRED:
		return newRED(s, capacityBytes, rng)
	case KindPIE:
		return newPIE(s, rng)
	case KindCoDel:
		return newCoDel(s)
	case KindPI2:
		return newPI2(s, rng)
	case KindDualPI2:
		return newDualPI2(s, rng)
	default:
		return nil
	}
}
