package aqm

import (
	"math"
	"testing"

	"marlin/internal/packet"
	"marlin/internal/sim"
)

// view builds a single-band snapshot with the given backlog and head age.
func view(bytes, packets int, headAt sim.Time) QueueView {
	v := QueueView{Bytes: bytes, Packets: packets, Capacity: 256 << 10}
	v.BandBytes[0], v.BandPackets[0], v.HeadEnqAt[0] = bytes, packets, headAt
	return v
}

func TestHeadDelay(t *testing.T) {
	v := view(3000, 2, sim.Time(5*sim.Millisecond))
	if got := v.HeadDelay(0, sim.Time(8*sim.Millisecond)); got != 3*sim.Millisecond {
		t.Fatalf("HeadDelay = %v, want 3ms", got)
	}
	empty := view(0, 0, 0)
	if got := empty.HeadDelay(0, sim.Time(sim.Second)); got != 0 {
		t.Fatalf("HeadDelay of empty band = %v, want 0", got)
	}
}

func TestDecisionString(t *testing.T) {
	for d, want := range map[Decision]string{Pass: "pass", Mark: "mark", Drop: "drop"} {
		if d.String() != want {
			t.Errorf("Decision(%d).String() = %q, want %q", d, d.String(), want)
		}
	}
}

// TestREDEWMA pins the average update rule: avg += w·(backlog − avg), and
// the threshold behaviour around it.
func TestREDEWMA(t *testing.T) {
	s, err := ParseSpec("red:min=30000,max=90000,maxp=0.1,w=0.25")
	if err != nil {
		t.Fatal(err)
	}
	r := s.Build(256<<10, sim.NewRand(1)).(*RED)

	cases := []struct {
		backlog int
		wantAvg float64
	}{
		{8000, 2000}, // 0 + 0.25·8000
		{8000, 3500}, // 2000 + 0.25·6000
		{0, 2625},    // decays toward empty
		{20000, 6968.75},
	}
	now := sim.Time(0)
	for i, tc := range cases {
		d := r.OnEnqueue(nil, 0, view(tc.backlog, tc.backlog/1000, 0), now)
		if d != Pass {
			t.Fatalf("case %d: below min threshold yet %v", i, d)
		}
		if math.Abs(r.Avg()-tc.wantAvg) > 1e-9 {
			t.Fatalf("case %d: avg = %v, want %v", i, r.Avg(), tc.wantAvg)
		}
		now = now.Add(sim.Microsecond)
	}

	// Saturate the EWMA far above max: every arrival is marked.
	for i := 0; i < 20; i++ {
		r.OnEnqueue(nil, 0, view(200<<10, 200, 0), now)
	}
	if d := r.OnEnqueue(nil, 0, view(200<<10, 200, 0), now); d != Mark {
		t.Fatalf("above max threshold: %v, want mark", d)
	}
}

// TestREDUniformSpread checks the probabilistic region marks at roughly
// maxP·(avg−min)/(max−min) and that the decision stream is deterministic
// for a fixed seed.
func TestREDUniformSpread(t *testing.T) {
	spec := "red:min=10000,max=110000,maxp=0.2,w=0.5"
	run := func(seed uint64) (marks int, firstMark int) {
		s, _ := ParseSpec(spec)
		r := s.Build(256<<10, sim.NewRand(seed)).(*RED)
		firstMark = -1
		for i := 0; i < 2000; i++ {
			// Hold the instantaneous backlog at mid-ramp: pb = 0.1.
			if r.OnEnqueue(nil, 0, view(60000, 60, 0), sim.Time(i)*sim.Time(sim.Microsecond)) == Mark {
				marks++
				if firstMark < 0 {
					firstMark = i
				}
			}
		}
		return marks, firstMark
	}
	m1, f1 := run(7)
	m2, f2 := run(7)
	if m1 != m2 || f1 != f2 {
		t.Fatalf("same seed diverged: (%d,%d) vs (%d,%d)", m1, f1, m2, f2)
	}
	// With pb ≈ 0.1 and uniform spread, expect a mark roughly every 10
	// packets; allow a wide deterministic band.
	if m1 < 150 || m1 > 550 {
		t.Fatalf("marks = %d over 2000 arrivals, want ~200", m1)
	}
}

// TestPIEControllerStep pins one controller update: with p tiny the RFC
// ladder divides the raw delta by 2048.
func TestPIEControllerStep(t *testing.T) {
	s, err := ParseSpec("pie:target=15ms,tupdate=15ms,alpha=0.125,beta=1.25")
	if err != nil {
		t.Fatal(err)
	}
	q := s.Build(256<<10, sim.NewRand(1)).(*PIE)

	// First touch only arms the update timer.
	q.OnDequeue(nil, 0, 0, view(0, 0, 0), 0)
	if q.P() != 0 {
		t.Fatalf("p after arming = %v, want 0", q.P())
	}
	// One interval later with 40ms of standing delay: raw delta =
	// 0.125·(0.040−0.015) + 1.25·(0.040−0) = 0.053125, ladder /2048.
	head := sim.Time(0)
	now := sim.Time(15 * sim.Millisecond)
	q.OnDequeue(nil, 0, 0, view(90000, 60, head-sim.Time(25*sim.Millisecond)), now)
	want := 0.053125 / 2048
	if math.Abs(q.P()-want) > 1e-12 {
		t.Fatalf("p after one step = %v, want %v", q.P(), want)
	}
}

// TestPIEDropsAboveECNThreshold: once p crosses ecnth the verdict is Drop
// (even ECN-capable flows lose packets), below it Mark.
func TestPIEDropsAboveECNThreshold(t *testing.T) {
	s, _ := ParseSpec("pie")
	q := s.Build(256<<10, sim.NewRand(3)).(*PIE)
	q.p = 0.05
	q.started = true
	q.next = sim.Forever // freeze the controller
	sawMark := false
	for i := 0; i < 200 && !sawMark; i++ {
		sawMark = q.OnEnqueue(nil, 0, view(50000, 40, 0), 0) == Mark
	}
	if !sawMark {
		t.Fatal("p=0.05 never produced a Mark in 200 arrivals")
	}
	q.p = 0.5
	sawDrop := false
	for i := 0; i < 200 && !sawDrop; i++ {
		d := q.OnEnqueue(nil, 0, view(50000, 40, 0), 0)
		if d == Mark {
			t.Fatal("p above ecnth must Drop, got Mark")
		}
		sawDrop = d == Drop
	}
	if !sawDrop {
		t.Fatal("p=0.5 never produced a Drop in 200 arrivals")
	}
}

// TestPI2ControllerStep pins the linear (ladder-free) update and the
// squared application probability.
func TestPI2ControllerStep(t *testing.T) {
	s, err := ParseSpec("pi2:target=15ms,tupdate=16ms,alpha=0.3125,beta=3.125")
	if err != nil {
		t.Fatal(err)
	}
	q := s.Build(256<<10, sim.NewRand(1)).(*PI2)
	q.OnDequeue(nil, 0, 0, view(0, 0, 0), 0)
	// 47ms standing delay: delta = 0.3125·0.032 + 3.125·0.047 = 0.156875,
	// no ladder.
	now := sim.Time(16 * sim.Millisecond)
	q.OnDequeue(nil, 0, 0, view(90000, 60, now-sim.Time(47*sim.Millisecond)), now)
	if math.Abs(q.PPrime()-0.156875) > 1e-12 {
		t.Fatalf("p' = %v, want 0.156875", q.PPrime())
	}
	// Application probability is p'²: with p' ≈ 0.157, expect ~2.5% marks.
	marks := 0
	q.core.next = sim.Forever
	for i := 0; i < 4000; i++ {
		if q.OnEnqueue(nil, 0, view(90000, 60, 0), now) == Mark {
			marks++
		}
	}
	if marks < 40 || marks > 250 {
		t.Fatalf("marks = %d over 4000 arrivals, want ~98 (p'²)", marks)
	}
}

// TestCoDelLadder drives sojourn above target and checks the √count
// signalling cadence.
func TestCoDelLadder(t *testing.T) {
	s, err := ParseSpec("codel:target=5ms,interval=100ms")
	if err != nil {
		t.Fatal(err)
	}
	c := s.Build(256<<10, sim.NewRand(1)).(*CoDel)

	const sojourn = 20 * sim.Millisecond
	v := view(60000, 40, 0)
	// Below a full interval above target: no signal yet.
	if d := c.OnDequeue(nil, 0, sojourn, v, sim.Time(0)); d != Pass {
		t.Fatalf("first above-target dequeue: %v, want pass", d)
	}
	if d := c.OnDequeue(nil, 0, sojourn, v, sim.Time(50*sim.Millisecond)); d != Pass {
		t.Fatalf("half an interval in: %v, want pass", d)
	}
	// A full interval above target: enter dropping, first signal now.
	if d := c.OnDequeue(nil, 0, sojourn, v, sim.Time(100*sim.Millisecond)); d != Mark {
		t.Fatalf("interval elapsed: %v, want mark", d)
	}
	if dropping, count := c.State(); !dropping || count != 1 {
		t.Fatalf("state after entry = (%v,%d), want (true,1)", dropping, count)
	}
	// Next signal is interval/√2 after the second signal time: walk
	// dequeues at 1ms spacing and collect signal times.
	var signals []sim.Time
	for ms := 101; ms <= 400 && len(signals) < 3; ms++ {
		now := sim.Time(ms) * sim.Time(sim.Millisecond)
		if c.OnDequeue(nil, 0, sojourn, v, now) == Mark {
			signals = append(signals, now)
		}
	}
	if len(signals) < 3 {
		t.Fatalf("only %d ladder signals in 300ms", len(signals))
	}
	// Gaps should shrink: interval/√1=100ms to next, then /√2≈71ms, /√3≈58.
	g1 := signals[1].Sub(signals[0])
	g2 := signals[2].Sub(signals[1])
	if g1 <= g2 {
		t.Fatalf("ladder not tightening: gaps %v then %v", g1, g2)
	}
	// Sojourn back under target exits the dropping state.
	if d := c.OnDequeue(nil, 0, sim.Millisecond, v, signals[2].Add(sim.Millisecond)); d != Pass {
		t.Fatal("under-target dequeue still signalled")
	}
	if dropping, _ := c.State(); dropping {
		t.Fatal("still dropping after sojourn recovered")
	}
}

func dualView(cBytes, cPkts int, cHead sim.Time, lBytes, lPkts int, lHead sim.Time) QueueView {
	v := QueueView{Bytes: cBytes + lBytes, Packets: cPkts + lPkts, Capacity: 256 << 10}
	v.BandBytes[BandClassic], v.BandPackets[BandClassic], v.HeadEnqAt[BandClassic] = cBytes, cPkts, cHead
	v.BandBytes[BandL4S], v.BandPackets[BandL4S], v.HeadEnqAt[BandL4S] = lBytes, lPkts, lHead
	return v
}

func TestDualPI2Classify(t *testing.T) {
	s, _ := ParseSpec("dualpi2")
	q := s.Build(256<<10, sim.NewRand(1)).(*DualPI2)
	cases := []struct {
		ect  packet.ECT
		ce   bool
		want int
	}{
		{packet.NotECT, false, BandClassic},
		{packet.ECT0, false, BandClassic},
		{packet.ECT1, false, BandL4S},
		{packet.ECT0, true, BandL4S}, // CE-marked upstream rides the fast lane
	}
	for _, tc := range cases {
		p := packet.NewDataECT(1, 0, 1024, 0, tc.ect)
		if tc.ce {
			p.Flags |= packet.FlagCE
		}
		if got := q.Classify(p); got != tc.want {
			t.Errorf("Classify(%v,ce=%v) = %d, want %d", tc.ect, tc.ce, got, tc.want)
		}
		p.Release()
	}
}

// TestDualPI2Coupling forces a base probability and checks the L4S mark
// rate tracks k·p' while classic arrivals see only p'².
func TestDualPI2Coupling(t *testing.T) {
	s, err := ParseSpec("dualpi2:coupling=2")
	if err != nil {
		t.Fatal(err)
	}
	q := s.Build(256<<10, sim.NewRand(9)).(*DualPI2)
	q.core.started = true
	q.core.next = sim.Forever // freeze the controller at a forced p'
	q.core.pPrime = 0.1

	const n = 5000
	l4sMarks, classicMarks := 0, 0
	v := dualView(30000, 20, 0, 3000, 2, 0)
	for i := 0; i < n; i++ {
		if q.OnDequeue(nil, BandL4S, 0, v, 0) == Mark {
			l4sMarks++
		}
		if q.OnEnqueue(nil, BandClassic, v, 0) == Mark {
			classicMarks++
		}
	}
	// L4S: k·p' = 0.2 → ~1000 marks; classic: p'² = 0.01 → ~50 marks.
	if l4sMarks < 800 || l4sMarks > 1200 {
		t.Fatalf("l4s marks = %d / %d, want ~%d", l4sMarks, n, n/5)
	}
	if classicMarks < 20 || classicMarks > 110 {
		t.Fatalf("classic marks = %d / %d, want ~%d", classicMarks, n, n/100)
	}
	if l4sMarks < 4*classicMarks {
		t.Fatalf("coupling inverted: l4s %d vs classic %d", l4sMarks, classicMarks)
	}
}

// TestDualPI2StepMark: sojourn beyond the step threshold marks
// unconditionally, below it only the coupled probability applies.
func TestDualPI2StepMark(t *testing.T) {
	s, _ := ParseSpec("dualpi2:step=1ms")
	q := s.Build(256<<10, sim.NewRand(1)).(*DualPI2)
	q.core.started = true
	q.core.next = sim.Forever
	v := dualView(0, 0, 0, 3000, 2, 0)
	if d := q.OnDequeue(nil, BandL4S, 2*sim.Millisecond, v, 0); d != Mark {
		t.Fatalf("sojourn over step: %v, want mark", d)
	}
	// p'=0: under the step threshold nothing marks.
	for i := 0; i < 100; i++ {
		if d := q.OnDequeue(nil, BandL4S, sim.Microsecond, v, 0); d != Pass {
			t.Fatalf("p'=0 under step marked: %v", d)
		}
	}
}

// TestDualPI2PickBand pins the time-shifted FIFO: L4S wins unless the
// classic head is more than Shift older.
func TestDualPI2PickBand(t *testing.T) {
	s, _ := ParseSpec("dualpi2:shift=1ms")
	q := s.Build(256<<10, sim.NewRand(1)).(*DualPI2)
	now := sim.Time(10 * sim.Millisecond)

	onlyClassic := dualView(1500, 1, sim.Time(sim.Millisecond), 0, 0, 0)
	if q.PickBand(onlyClassic, now) != BandClassic {
		t.Fatal("empty L4S band must fall back to classic")
	}
	onlyL4S := dualView(0, 0, 0, 1500, 1, sim.Time(sim.Millisecond))
	if q.PickBand(onlyL4S, now) != BandL4S {
		t.Fatal("empty classic band must pick L4S")
	}
	// Heads 0.5ms apart (classic older): inside the shift, L4S wins.
	close := dualView(1500, 1, sim.Time(4*sim.Millisecond), 1500, 1, sim.Time(4500*sim.Microsecond))
	if q.PickBand(close, now) != BandL4S {
		t.Fatal("classic only 0.5ms older must not beat the shift")
	}
	// Classic head 2ms older than L4S: beyond the shift, classic wins.
	far := dualView(1500, 1, sim.Time(2*sim.Millisecond), 1500, 1, sim.Time(4*sim.Millisecond))
	if q.PickBand(far, now) != BandClassic {
		t.Fatal("classic 2ms older must win past the shift")
	}
}

// TestDisciplineDeterminism runs every discipline twice over an identical
// synthetic event tape and requires byte-identical decision sequences —
// the property the fleet differential test checks end to end.
func TestDisciplineDeterminism(t *testing.T) {
	specs := []string{"red", "pie", "codel", "pi2", "dualpi2"}
	for _, name := range specs {
		tape := func(seed uint64) []Decision {
			s, err := ParseSpec(name)
			if err != nil {
				t.Fatal(err)
			}
			a := s.Build(64<<10, sim.NewRand(seed))
			drive := sim.NewRand(42) // event tape generator, separate stream
			var out []Decision
			var now sim.Time
			for i := 0; i < 3000; i++ {
				now = now.Add(sim.Duration(drive.Intn(int(50 * sim.Microsecond))))
				backlog := drive.Intn(64 << 10)
				age := sim.Duration(drive.Intn(int(30 * sim.Millisecond)))
				v := dualView(backlog, backlog/1000+1, now-sim.Time(age), backlog/4, backlog/4000+1, now-sim.Time(age/2))
				if drive.Intn(2) == 0 {
					out = append(out, a.OnEnqueue(nil, i%a.Bands(), v, now))
				} else {
					out = append(out, a.OnDequeue(nil, i%a.Bands(), age, v, now))
				}
			}
			return out
		}
		a, b := tape(5), tape(5)
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: decision %d diverged: %v vs %v", name, i, a[i], b[i])
				break
			}
		}
	}
}

// TestEnqueueHotPathAllocs is the 0 allocs/op gate on the enqueue hot path
// for every discipline, backing the benchjson assertion.
func TestEnqueueHotPathAllocs(t *testing.T) {
	for _, name := range []string{"red", "pie", "codel", "pi2", "dualpi2"} {
		s, err := ParseSpec(name)
		if err != nil {
			t.Fatal(err)
		}
		a := s.Build(64<<10, sim.NewRand(1))
		p := packet.NewDataECT(1, 0, 1500, 0, packet.ECT1)
		v := dualView(40000, 30, 0, 4000, 3, 0)
		var now sim.Time
		allocs := testing.AllocsPerRun(200, func() {
			now = now.Add(sim.Microsecond)
			band := a.Classify(p)
			a.OnEnqueue(p, band, v, now)
			a.OnDequeue(p, band, 10*sim.Microsecond, v, now)
		})
		p.Release()
		if allocs != 0 {
			t.Errorf("%s: %v allocs/op on the hot path, want 0", name, allocs)
		}
	}
}
