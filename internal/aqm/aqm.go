// Package aqm implements pluggable active-queue-management disciplines for
// Marlin's emulated egress queues: RED, PIE, CoDel, PI2, and the coupled
// dual-queue DualPI2 (RFC 9332) that gives L4S traffic a low-latency queue.
//
// A discipline is pure decision logic: it never owns packets and never
// touches the wire. The netem Queue calls OnEnqueue before admitting a
// packet and OnDequeue after removing one, and the discipline answers
// Pass, Mark, or Drop. Mark is a congestion *signal*, not a CE write: the
// queue resolves it to a CE mark when the packet carries an ECT codepoint
// and marking is not suppressed (the faults `ecnoff` case), and to a drop
// otherwise — exactly how a real AQM degrades when ECN is disabled.
//
// Determinism rules: disciplines are driven entirely by the sim-time `now`
// handed into each hook and by the pre-split *sim.Rand stream given to
// Build. Sojourn time is measured from Packet.EnqAt, stamped by the queue
// at admission. No wall clock, no global RNG, no allocation on the
// enqueue/dequeue hot path.
package aqm

import (
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// Decision is an AQM verdict on one packet.
type Decision uint8

// Verdicts.
const (
	// Pass admits (or delivers) the packet untouched.
	Pass Decision = iota
	// Mark signals congestion: the queue CE-marks the packet if it is
	// ECN-capable and marking is enabled, and drops it otherwise.
	Mark
	// Drop discards the packet unconditionally (tail-drop semantics on
	// enqueue; CoDel-style head drop on dequeue).
	Drop
)

// String names the verdict.
func (d Decision) String() string {
	switch d {
	case Mark:
		return "mark"
	case Drop:
		return "drop"
	default:
		return "pass"
	}
}

// MaxBands is the most queue bands any discipline uses: DualPI2's classic
// and L4S queues. Single-queue disciplines use band 0 only.
const MaxBands = 2

// Band indices for dual-queue disciplines.
const (
	BandClassic = 0
	BandL4S     = 1
)

// QueueView is a read-only snapshot of the queue the discipline manages,
// passed by value into every hook. For OnEnqueue it describes the backlog
// before the candidate packet is admitted; for OnDequeue, the backlog after
// the departing packet was removed.
type QueueView struct {
	// Bytes and Packets are the total backlog across all bands.
	Bytes, Packets int
	// Capacity is the queue's configured byte capacity.
	Capacity int
	// BandBytes and BandPackets split the backlog per band.
	BandBytes   [MaxBands]int
	BandPackets [MaxBands]int
	// HeadEnqAt is the enqueue stamp of each band's head packet; it is
	// meaningless when the band is empty (check BandPackets first, or use
	// HeadDelay which does).
	HeadEnqAt [MaxBands]sim.Time
}

// HeadDelay returns the standing delay of the band's head packet — the
// sojourn it would observe if dequeued at `now` — or zero when the band is
// empty. PI-type controllers sample this as the queue-delay input.
func (v *QueueView) HeadDelay(band int, now sim.Time) sim.Duration {
	if v.BandPackets[band] == 0 {
		return 0
	}
	return now.Sub(v.HeadEnqAt[band])
}

// AQM is one discipline instance, bound to one queue. Instances are
// stateful and single-queue: build one per managed queue via Spec.Build.
type AQM interface {
	// Name returns the discipline name ("red", "pi2", ...).
	Name() string
	// Bands returns how many queue bands the discipline schedules (1 for
	// single-queue disciplines, 2 for DualPI2).
	Bands() int
	// Classify maps an arriving packet to a band. Single-queue
	// disciplines return 0.
	Classify(p *packet.Packet) int
	// OnEnqueue decides the fate of a packet about to be admitted to the
	// given band. The view excludes the candidate packet.
	OnEnqueue(p *packet.Packet, band int, view QueueView, now sim.Time) Decision
	// OnDequeue decides the fate of a packet just removed from the given
	// band; sojourn is its queueing delay. Drop means the queue releases
	// the packet and dequeues the next one (CoDel head drop).
	OnDequeue(p *packet.Packet, band int, sojourn sim.Duration, view QueueView, now sim.Time) Decision
	// PickBand selects which non-empty band dequeues next. Callers
	// guarantee at least one band is non-empty.
	PickBand(view QueueView, now sim.Time) int
}
