package aqm

import (
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// RED is Random Early Detection (Floyd & Jacobson '93): an EWMA of the
// byte backlog drives a marking probability that ramps linearly from 0 at
// MinTh to MaxP at MaxTh, with the classic uniform-spread correction so
// marks are evenly spaced rather than geometrically clustered. At or above
// MaxTh every arrival is marked.
type RED struct {
	minTh, maxTh int     // EWMA thresholds, bytes
	maxP         float64 // mark probability at maxTh
	weight       float64 // EWMA gain wq
	idlePkt      sim.Duration

	rng      *sim.Rand
	avg      float64 // EWMA of queue bytes
	count    int     // arrivals since last mark
	idleFrom sim.Time
	idle     bool
}

// newRED builds a RED instance; thresholds of zero default to capacity/6
// and capacity/2.
func newRED(s Spec, capacity int, rng *sim.Rand) *RED {
	r := &RED{
		minTh:   s.MinTh,
		maxTh:   s.MaxTh,
		maxP:    s.MaxP,
		weight:  s.Weight,
		idlePkt: s.IdlePkt,
		rng:     rng,
	}
	if r.minTh == 0 {
		r.minTh = capacity / 6
	}
	if r.maxTh == 0 {
		r.maxTh = capacity / 2
	}
	return r
}

// Name implements AQM.
func (r *RED) Name() string { return "red" }

// Bands implements AQM.
func (r *RED) Bands() int { return 1 }

// Classify implements AQM.
func (r *RED) Classify(*packet.Packet) int { return 0 }

// PickBand implements AQM.
func (r *RED) PickBand(QueueView, sim.Time) int { return 0 }

// OnDequeue implements AQM: RED acts on arrivals only, but it notes when
// the queue drains empty so the EWMA can decay across the idle period.
func (r *RED) OnDequeue(_ *packet.Packet, _ int, _ sim.Duration, view QueueView, now sim.Time) Decision {
	if view.Packets == 0 && !r.idle {
		r.idle, r.idleFrom = true, now
	}
	return Pass
}

// OnEnqueue implements AQM.
func (r *RED) OnEnqueue(_ *packet.Packet, _ int, view QueueView, now sim.Time) Decision {
	if r.idle {
		// Decay the average as if (idle time / typical packet time) empty
		// samples had arrived, per the RED paper's idle handling.
		if m := int(now.Sub(r.idleFrom) / r.idlePkt); m > 0 {
			for i := 0; i < m && r.avg > 1; i++ {
				r.avg *= 1 - r.weight
			}
			if r.avg <= 1 {
				r.avg = 0
			}
		}
		r.idle = false
	}
	r.avg += r.weight * (float64(view.Bytes) - r.avg)

	switch {
	case r.avg < float64(r.minTh):
		r.count = 0
		return Pass
	case r.avg >= float64(r.maxTh):
		r.count = 0
		return Mark
	}
	pb := r.maxP * (r.avg - float64(r.minTh)) / float64(r.maxTh-r.minTh)
	r.count++
	// Uniform spread: pa = pb / (1 - count*pb), forced once the divisor
	// would go non-positive.
	div := 1 - float64(r.count)*pb
	if div <= 0 {
		r.count = 0
		return Mark
	}
	if r.rng.Float64() < pb/div {
		r.count = 0
		return Mark
	}
	return Pass
}

// Avg exposes the EWMA for tests.
func (r *RED) Avg() float64 { return r.avg }
