package aqm

import (
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// PIE is Proportional Integral controller Enhanced (RFC 8033): every
// TUpdate the drop probability moves by alpha·(delay−target) +
// beta·(delay−lastDelay), with the RFC's small-p scaling ladder so the
// controller stays stable near zero. Queue delay is sampled as the standing
// delay of the head packet. Arrivals are then marked with probability p —
// or dropped outright once p exceeds the ECN safeguard threshold, the
// RFC's defence against unresponsive ECN-capable flows.
type PIE struct {
	target  sim.Duration
	tUpdate sim.Duration
	alpha   float64 // 1/s
	beta    float64 // 1/s
	ecnTh   float64 // above this p, drop even ECN-capable packets

	rng       *sim.Rand
	p         float64
	prevDelay sim.Duration
	next      sim.Time
	started   bool
}

func newPIE(s Spec, rng *sim.Rand) *PIE {
	return &PIE{
		target:  s.Target,
		tUpdate: s.TUpdate,
		alpha:   s.Alpha,
		beta:    s.Beta,
		ecnTh:   s.ECNTh,
		rng:     rng,
	}
}

// Name implements AQM.
func (q *PIE) Name() string { return "pie" }

// Bands implements AQM.
func (q *PIE) Bands() int { return 1 }

// Classify implements AQM.
func (q *PIE) Classify(*packet.Packet) int { return 0 }

// PickBand implements AQM.
func (q *PIE) PickBand(QueueView, sim.Time) int { return 0 }

// step advances the controller through every TUpdate boundary at or before
// now. Running it from both hooks keeps the probability fresh without any
// timer of its own, and the catch-up loop makes the state a pure function
// of the event sequence.
func (q *PIE) step(view QueueView, now sim.Time) {
	if !q.started {
		q.started = true
		q.next = now.Add(q.tUpdate)
		return
	}
	delay := view.HeadDelay(0, now)
	for now >= q.next {
		delta := q.alpha*(delay-q.target).Seconds() + q.beta*(delay-q.prevDelay).Seconds()
		delta *= pieScale(q.p)
		q.p = clamp01(q.p + delta)
		// Exponential decay toward zero while the queue stays idle.
		if delay == 0 && q.prevDelay == 0 {
			q.p *= 0.98
		}
		q.prevDelay = delay
		q.next = q.next.Add(q.tUpdate)
	}
}

// pieScale is the RFC 8033 §4.2 auto-scaling ladder: shrink controller
// steps while p is tiny so the probability cannot overshoot from zero.
func pieScale(p float64) float64 {
	switch {
	case p < 0.000001:
		return 1.0 / 2048
	case p < 0.00001:
		return 1.0 / 512
	case p < 0.0001:
		return 1.0 / 128
	case p < 0.001:
		return 1.0 / 32
	case p < 0.01:
		return 1.0 / 8
	case p < 0.1:
		return 1.0 / 2
	default:
		return 1
	}
}

// OnEnqueue implements AQM.
func (q *PIE) OnEnqueue(_ *packet.Packet, _ int, view QueueView, now sim.Time) Decision {
	q.step(view, now)
	if q.p <= 0 {
		return Pass
	}
	if q.rng.Float64() >= q.p {
		return Pass
	}
	if q.p >= q.ecnTh {
		return Drop
	}
	return Mark
}

// OnDequeue implements AQM: PIE decides on arrivals only.
func (q *PIE) OnDequeue(_ *packet.Packet, _ int, _ sim.Duration, view QueueView, now sim.Time) Decision {
	q.step(view, now)
	return Pass
}

// P exposes the drop probability for tests.
func (q *PIE) P() float64 { return q.p }

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
