package aqm

import (
	"strings"
	"testing"

	"marlin/internal/sim"
)

func TestParseSpecDefaults(t *testing.T) {
	for name, kind := range map[string]Kind{
		"red": KindRED, "pie": KindPIE, "codel": KindCoDel,
		"pi2": KindPI2, "dualpi2": KindDualPI2,
	} {
		s, err := ParseSpec(name)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", name, err)
		}
		if s.Kind != kind || !s.Enabled() {
			t.Errorf("ParseSpec(%q).Kind = %v", name, s.Kind)
		}
		a := s.Build(256<<10, sim.NewRand(1))
		if a == nil || a.Name() != name {
			t.Errorf("Build(%q).Name() = %v", name, a)
		}
	}
	for _, off := range []string{"", "none", "  none  "} {
		s, err := ParseSpec(off)
		if err != nil || s.Enabled() || s.Build(1, nil) != nil {
			t.Errorf("ParseSpec(%q) = %+v, %v; want disabled", off, s, err)
		}
	}
}

func TestParseSpecOverrides(t *testing.T) {
	s, err := ParseSpec("dualpi2:target=5ms,coupling=4,step=500us,shift=2ms,tupdate=8ms,alpha=0.2,beta=2")
	if err != nil {
		t.Fatal(err)
	}
	if s.Target != 5*sim.Millisecond || s.Coupling != 4 || s.Step != 500*sim.Microsecond ||
		s.Shift != 2*sim.Millisecond || s.TUpdate != 8*sim.Millisecond ||
		s.Alpha != 0.2 || s.Beta != 2 {
		t.Fatalf("overrides not applied: %+v", s)
	}
	r, err := ParseSpec("red:min=20000,max=60000,maxp=0.05,w=0.01")
	if err != nil {
		t.Fatal(err)
	}
	if r.MinTh != 20000 || r.MaxTh != 60000 || r.MaxP != 0.05 || r.Weight != 0.01 {
		t.Fatalf("red overrides not applied: %+v", r)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		src, wantErr string
	}{
		{"fq_codel", "unknown discipline"},
		{"red:maxp=2", "maxp must be in"},
		{"red:w=1.5", "w must be in"},
		{"red:min=50000,max=40000", "min must be below max"},
		{"pie:target=0s", "target must be positive"},
		{"pi2:tupdate=0s", "tupdate must be positive"},
		{"codel:interval=0s", "interval must be positive"},
		{"dualpi2:coupling=0", "coupling must be positive"},
		{"codel:coupling=2", `unexpected "coupling" for codel`},
		{"red:target=5ms", `unexpected "target" for red`},
		{"pie:bogus=1", `unexpected "bogus"`},
		{"pie:target=xyz", "bad duration"},
		{"pie:target=5ms,target=6ms", "duplicate key"},
	}
	for _, tc := range cases {
		_, err := ParseSpec(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ParseSpec(%q) err = %v, want containing %q", tc.src, err, tc.wantErr)
		}
	}
}

// TestSpecStringRoundTrips: String output re-parses to the same spec for
// every discipline (with RED thresholds pinned, since zero means
// capacity-scaled).
func TestSpecStringRoundTrips(t *testing.T) {
	srcs := []string{
		"red:min=30000,max=90000",
		"pie", "codel", "pi2", "dualpi2",
		"dualpi2:target=5ms,coupling=4",
		"dualpi2:tupdate=25us,alpha=0.5,step=10us",
		"pie:ecnth=0.25,target=20us",
	}
	for _, src := range srcs {
		s, err := ParseSpec(src)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("re-parsing %q: %v", s.String(), err)
		}
		// Specs are plain comparable values and String renders every
		// parseable knob, so the round trip must be exact.
		if back != s {
			t.Errorf("%q round-tripped to %+v, want %+v", src, back, s)
		}
	}
}

func TestREDThresholdsScaleToCapacity(t *testing.T) {
	s, _ := ParseSpec("red")
	r := s.Build(120000, sim.NewRand(1)).(*RED)
	if r.minTh != 20000 || r.maxTh != 60000 {
		t.Fatalf("capacity-scaled thresholds = %d/%d, want 20000/60000", r.minTh, r.maxTh)
	}
}
