package aqm

import (
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// DualPI2 is the coupled dual-queue AQM of RFC 9332: ECT(1) traffic (the
// L4S identifier) is classified into a low-latency queue, everything else
// into the classic queue. One PI controller runs on the classic queue's
// delay and produces the base probability p'; classic arrivals are
// signalled with probability p'² (the square law a Reno/CUBIC response
// expects) while L4S departures are marked with the coupled probability
// k·p' plus an immediate step mark once their sojourn exceeds StepTh.
// The coupling is what makes the two queues share capacity fairly even
// though the scalable flows see marks far more often. Dequeue order is a
// time-shifted FIFO: the L4S head gets a Shift head start, which bounds
// its latency without starving the classic queue.
type DualPI2 struct {
	core   piCore
	k      float64 // coupling factor
	stepTh sim.Duration
	shift  sim.Duration
	rng    *sim.Rand
}

func newDualPI2(s Spec, rng *sim.Rand) *DualPI2 {
	return &DualPI2{
		core:   piCore{target: s.Target, tUpdate: s.TUpdate, alpha: s.Alpha, beta: s.Beta},
		k:      s.Coupling,
		stepTh: s.Step,
		shift:  s.Shift,
		rng:    rng,
	}
}

// Name implements AQM.
func (q *DualPI2) Name() string { return "dualpi2" }

// Bands implements AQM.
func (q *DualPI2) Bands() int { return 2 }

// Classify implements AQM: ECT(1) — and anything already CE-marked, which
// only an ECN-capable sender can have produced — goes to the L4S band.
func (q *DualPI2) Classify(p *packet.Packet) int {
	if p.ECT() == packet.ECT1 || p.Flags.Has(packet.FlagCE) {
		return BandL4S
	}
	return BandClassic
}

// PickBand implements AQM: time-shifted FIFO. The L4S head competes with
// its enqueue time shifted Shift earlier, so it wins whenever the classic
// head is not already Shift older.
func (q *DualPI2) PickBand(view QueueView, now sim.Time) int {
	if view.BandPackets[BandL4S] == 0 {
		return BandClassic
	}
	if view.BandPackets[BandClassic] == 0 {
		return BandL4S
	}
	if view.HeadEnqAt[BandClassic].Add(q.shift) < view.HeadEnqAt[BandL4S] {
		return BandClassic
	}
	return BandL4S
}

// classicDelay is the controller's queue-delay sample: the classic head's
// standing delay, or the L4S head's when the classic band is empty so the
// controller still sees load carried entirely by scalable flows.
func (q *DualPI2) classicDelay(view QueueView, now sim.Time) sim.Duration {
	if view.BandPackets[BandClassic] > 0 {
		return view.HeadDelay(BandClassic, now)
	}
	return view.HeadDelay(BandL4S, now)
}

// OnEnqueue implements AQM: classic arrivals face the squared probability;
// L4S arrivals are never dropped on admission (their signal happens at
// dequeue, where sojourn is known).
func (q *DualPI2) OnEnqueue(_ *packet.Packet, band int, view QueueView, now sim.Time) Decision {
	q.core.step(q.classicDelay(view, now), now)
	if band != BandClassic {
		return Pass
	}
	prob := q.core.pPrime * q.core.pPrime
	if prob <= 0 {
		return Pass
	}
	if q.rng.Float64() < prob {
		return Mark
	}
	return Pass
}

// OnDequeue implements AQM: L4S departures get the step mark past StepTh,
// else the coupled probabilistic mark k·p'.
func (q *DualPI2) OnDequeue(_ *packet.Packet, band int, sojourn sim.Duration, view QueueView, now sim.Time) Decision {
	q.core.step(q.classicDelay(view, now), now)
	if band != BandL4S {
		return Pass
	}
	if sojourn > q.stepTh {
		return Mark
	}
	coupled := q.k * q.core.pPrime
	if coupled <= 0 {
		return Pass
	}
	if coupled >= 1 || q.rng.Float64() < coupled {
		return Mark
	}
	return Pass
}

// PPrime exposes the base probability for tests.
func (q *DualPI2) PPrime() float64 { return q.core.pPrime }
