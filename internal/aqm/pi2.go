package aqm

import (
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// piCore is the linearised PI controller shared by PI2 and DualPI2: every
// TUpdate the base probability p' moves by alpha·(delay−target) +
// beta·(delay−lastDelay). Unlike PIE there is no scaling ladder — the
// whole point of PI2 is that squaring p' at application time makes the
// plain linear controller stable across both classic and scalable CC.
type piCore struct {
	target  sim.Duration
	tUpdate sim.Duration
	alpha   float64 // 1/s
	beta    float64 // 1/s

	pPrime    float64
	prevDelay sim.Duration
	next      sim.Time
	started   bool
}

// step advances the controller through every TUpdate boundary at or before
// now, using delay as the queue-delay sample.
func (c *piCore) step(delay sim.Duration, now sim.Time) {
	if !c.started {
		c.started = true
		c.next = now.Add(c.tUpdate)
		return
	}
	for now >= c.next {
		delta := c.alpha*(delay-c.target).Seconds() + c.beta*(delay-c.prevDelay).Seconds()
		c.pPrime = clamp01(c.pPrime + delta)
		if delay == 0 && c.prevDelay == 0 {
			c.pPrime *= 0.98
		}
		c.prevDelay = delay
		c.next = c.next.Add(c.tUpdate)
	}
}

// PI2 (PI improved with a square) runs the linear controller on the queue
// delay and applies probability p'² to every arrival. The squared law is
// what a Reno/CUBIC-style window response expects, so PI2 behaves like PIE
// without its tuning ladder, and the same p' couples naturally into
// DualPI2's L4S queue.
type PI2 struct {
	core piCore
	rng  *sim.Rand
}

func newPI2(s Spec, rng *sim.Rand) *PI2 {
	return &PI2{
		core: piCore{target: s.Target, tUpdate: s.TUpdate, alpha: s.Alpha, beta: s.Beta},
		rng:  rng,
	}
}

// Name implements AQM.
func (q *PI2) Name() string { return "pi2" }

// Bands implements AQM.
func (q *PI2) Bands() int { return 1 }

// Classify implements AQM.
func (q *PI2) Classify(*packet.Packet) int { return 0 }

// PickBand implements AQM.
func (q *PI2) PickBand(QueueView, sim.Time) int { return 0 }

// OnEnqueue implements AQM.
func (q *PI2) OnEnqueue(_ *packet.Packet, _ int, view QueueView, now sim.Time) Decision {
	q.core.step(view.HeadDelay(0, now), now)
	prob := q.core.pPrime * q.core.pPrime
	if prob <= 0 {
		return Pass
	}
	if q.rng.Float64() < prob {
		return Mark
	}
	return Pass
}

// OnDequeue implements AQM: PI2 decides on arrivals only.
func (q *PI2) OnDequeue(_ *packet.Packet, _ int, _ sim.Duration, view QueueView, now sim.Time) Decision {
	q.core.step(view.HeadDelay(0, now), now)
	return Pass
}

// PPrime exposes the base probability for tests.
func (q *PI2) PPrime() float64 { return q.core.pPrime }
