package aqm

import (
	"math"

	"marlin/internal/packet"
	"marlin/internal/sim"
)

// CoDel is Controlled Delay (RFC 8289), the sojourn-based dequeue-side
// discipline: once the standing delay has exceeded Target for a full
// Interval, CoDel enters a dropping state and signals congestion on a
// schedule that tightens with √count until the delay dips back under
// Target. Signals are Mark verdicts, so ECT traffic is CE-marked and
// Not-ECT traffic is head-dropped, per the RFC's ECN behaviour. CoDel
// needs no RNG: the interval ladder is fully deterministic.
type CoDel struct {
	target   sim.Duration
	interval sim.Duration

	firstAbove sim.Time // when sojourn first stayed above target; 0 = not above
	dropNext   sim.Time // next scheduled signal while dropping
	count      int      // signals in the current dropping episode
	lastCount  int      // count when the previous episode ended
	dropping   bool
}

func newCoDel(s Spec) *CoDel {
	return &CoDel{target: s.Target, interval: s.Interval}
}

// Name implements AQM.
func (c *CoDel) Name() string { return "codel" }

// Bands implements AQM.
func (c *CoDel) Bands() int { return 1 }

// Classify implements AQM.
func (c *CoDel) Classify(*packet.Packet) int { return 0 }

// PickBand implements AQM.
func (c *CoDel) PickBand(QueueView, sim.Time) int { return 0 }

// OnEnqueue implements AQM: CoDel acts at dequeue only.
func (c *CoDel) OnEnqueue(*packet.Packet, int, QueueView, sim.Time) Decision { return Pass }

// okToSignal tracks whether the sojourn has stayed above target for a full
// interval (RFC 8289 §5.2's dodeque logic). The near-empty exit uses the
// remaining backlog: with at most one MTU left there is no standing queue
// worth controlling.
func (c *CoDel) okToSignal(sojourn sim.Duration, view QueueView, now sim.Time) bool {
	if sojourn < c.target || view.Bytes < 1500 {
		c.firstAbove = 0
		return false
	}
	if c.firstAbove == 0 {
		c.firstAbove = now.Add(c.interval)
		return false
	}
	return now >= c.firstAbove
}

// OnDequeue implements AQM.
func (c *CoDel) OnDequeue(_ *packet.Packet, _ int, sojourn sim.Duration, view QueueView, now sim.Time) Decision {
	ok := c.okToSignal(sojourn, view, now)
	if c.dropping {
		switch {
		case !ok:
			c.dropping = false
		case now >= c.dropNext:
			c.count++
			c.dropNext = c.dropNext.Add(c.controlStep())
			return Mark
		}
		return Pass
	}
	if !ok {
		return Pass
	}
	// Enter dropping state. If we were signalling recently, resume the
	// ladder near the previous rate instead of restarting from 1 (the
	// RFC's count memory across short gaps).
	c.dropping = true
	delta := c.count - c.lastCount
	if delta > 1 && now.Sub(c.dropNext) < 16*c.interval {
		c.count = delta
	} else {
		c.count = 1
	}
	c.lastCount = c.count
	c.dropNext = now.Add(c.controlStep())
	return Mark
}

// controlStep is interval/√count, the control law that increases signal
// frequency the longer the queue refuses to drain.
func (c *CoDel) controlStep() sim.Duration {
	return sim.Duration(float64(c.interval) / math.Sqrt(float64(c.count)))
}

// State exposes the ladder for tests.
func (c *CoDel) State() (dropping bool, count int) { return c.dropping, c.count }
