// Package pcap writes classic libpcap capture files of simulated traffic.
//
// Production network testers capture traffic for offline analysis; this
// package gives the reproduction the same capability: attach a Capturer to
// any emulated link and the packets crossing it — with their simulated
// timestamps — become a file Wireshark/tcpdump can open. Control packets
// are written with their real 64-byte wire encoding (packet.MarshalControl);
// DATA packets get the 40-byte header followed by zero payload bytes,
// truncated by the configured snap length the way real capture points
// truncate.
package pcap

import (
	"encoding/binary"
	"fmt"
	"io"

	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// Classic pcap constants.
const (
	magicMicros  = 0xa1b2c3d4
	versionMajor = 2
	versionMinor = 4
	// LinkTypeUser0 is DLT_USER0: private link type, appropriate for
	// Marlin's custom framing.
	LinkTypeUser0 = 147
	// DefaultSnapLen truncates captured frames like tcpdump's default.
	DefaultSnapLen = 256
)

// Capturer streams packets into a pcap file.
type Capturer struct {
	eng     *sim.Engine
	w       io.Writer
	snap    int
	packets uint64
	bytes   uint64
	err     error
}

// NewCapturer writes a pcap global header to w and returns the capturer.
// snapLen <= 0 selects DefaultSnapLen.
func NewCapturer(eng *sim.Engine, w io.Writer, snapLen int) (*Capturer, error) {
	if snapLen <= 0 {
		snapLen = DefaultSnapLen
	}
	c := &Capturer{eng: eng, w: w, snap: snapLen}
	var hdr [24]byte
	binary.LittleEndian.PutUint32(hdr[0:4], magicMicros)
	binary.LittleEndian.PutUint16(hdr[4:6], versionMajor)
	binary.LittleEndian.PutUint16(hdr[6:8], versionMinor)
	// thiszone = 0, sigfigs = 0
	binary.LittleEndian.PutUint32(hdr[16:20], uint32(snapLen))
	binary.LittleEndian.PutUint32(hdr[20:24], LinkTypeUser0)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: write header: %w", err)
	}
	return c, nil
}

// Hook returns a netem link hook that records every passing packet.
func (c *Capturer) Hook() netem.Hook {
	return func(p *packet.Packet) netem.HookAction {
		c.Record(p)
		return netem.Pass
	}
}

// Packets reports how many packets were captured.
func (c *Capturer) Packets() uint64 { return c.packets }

// Bytes reports the captured (possibly truncated) byte volume.
func (c *Capturer) Bytes() uint64 { return c.bytes }

// Err returns the first write error, if any; once set, recording stops.
func (c *Capturer) Err() error { return c.err }

// Record writes one packet with the current simulated timestamp.
func (c *Capturer) Record(p *packet.Packet) {
	if c.err != nil {
		return
	}
	frame := c.encode(p)
	capLen := len(frame)
	if capLen > c.snap {
		capLen = c.snap
	}
	now := c.eng.Now()
	us := uint64(now) / uint64(sim.Microsecond)
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(us/1e6))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(us%1e6))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(capLen))
	binary.LittleEndian.PutUint32(hdr[12:16], uint32(len(frame)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		c.err = err
		return
	}
	if _, err := c.w.Write(frame[:capLen]); err != nil {
		c.err = err
		return
	}
	c.packets++
	c.bytes += uint64(capLen)
}

// encode produces the on-wire bytes: real MarshalControl encoding for
// control packets, header + zero payload for DATA/TEMP.
func (c *Capturer) encode(p *packet.Packet) []byte {
	switch p.Type {
	case packet.SCHE, packet.INFO, packet.ACK, packet.CNP:
		var buf [packet.ControlSize]byte
		if err := packet.MarshalControl(p, buf[:]); err == nil {
			return buf[:]
		}
	}
	// DATA (and anything else): the 40-byte header followed by zero
	// payload out to the frame size; capture consumers see real lengths.
	frame := make([]byte, p.Size)
	tmp := packet.Packet{
		Type: packet.ACK, // any marshalable type; the type byte is fixed up below
		Flow: p.Flow, PSN: p.PSN, Ack: p.Ack, Flags: p.Flags,
		Port: p.Port, SentAt: p.SentAt, RxTime: p.RxTime, Size: p.Size,
	}
	var head [packet.ControlSize]byte
	if err := packet.MarshalControl(&tmp, head[:]); err == nil {
		head[3] = byte(p.Type)
		copy(frame, head[:40])
	}
	return frame
}
