package pcap

import (
	"bytes"
	"encoding/binary"
	"testing"

	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

func TestCapturerHeaderAndRecords(t *testing.T) {
	eng := sim.NewEngine()
	var buf bytes.Buffer
	c, err := NewCapturer(eng, &buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Global header checks.
	hdr := buf.Bytes()
	if len(hdr) != 24 {
		t.Fatalf("header length = %d", len(hdr))
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != magicMicros {
		t.Fatal("bad magic")
	}
	if binary.LittleEndian.Uint32(hdr[20:24]) != LinkTypeUser0 {
		t.Fatal("bad link type")
	}

	eng.ScheduleAt(sim.Time(3*sim.Second+7*sim.Microsecond), func() {
		c.Record(packet.NewSche(9, 42, 3, eng.Now()))
	})
	eng.RunAll()
	if c.Packets() != 1 {
		t.Fatalf("packets = %d", c.Packets())
	}
	rec := buf.Bytes()[24:]
	if len(rec) != 16+packet.ControlSize {
		t.Fatalf("record length = %d", len(rec))
	}
	sec := binary.LittleEndian.Uint32(rec[0:4])
	usec := binary.LittleEndian.Uint32(rec[4:8])
	if sec != 3 || usec != 7 {
		t.Fatalf("timestamp = %d.%06d, want 3.000007", sec, usec)
	}
	if got := binary.LittleEndian.Uint32(rec[8:12]); got != packet.ControlSize {
		t.Fatalf("caplen = %d", got)
	}
	// The payload must be a valid wire-encoded SCHE packet.
	p, err := packet.Unmarshal(rec[16:])
	if err != nil {
		t.Fatal(err)
	}
	if p.Type != packet.SCHE || p.Flow != 9 || p.PSN != 42 || p.Port != 3 {
		t.Fatalf("decoded = %+v", p)
	}
}

func TestCapturerSnapLenTruncatesData(t *testing.T) {
	eng := sim.NewEngine()
	var buf bytes.Buffer
	c, err := NewCapturer(eng, &buf, 64)
	if err != nil {
		t.Fatal(err)
	}
	c.Record(packet.NewData(1, 0, 1024, 0))
	rec := buf.Bytes()[24:]
	capLen := binary.LittleEndian.Uint32(rec[8:12])
	origLen := binary.LittleEndian.Uint32(rec[12:16])
	if capLen != 64 || origLen != 1024 {
		t.Fatalf("caplen=%d origlen=%d, want 64/1024", capLen, origLen)
	}
	if len(rec) != 16+64 {
		t.Fatalf("record bytes = %d", len(rec))
	}
}

func TestCapturerOnLink(t *testing.T) {
	eng := sim.NewEngine()
	var buf bytes.Buffer
	c, err := NewCapturer(eng, &buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sink netem.Sink
	l := netem.NewLink(eng, netem.LinkConfig{Rate: sim.Gbps}, &sink)
	l.AddHook(c.Hook())
	for i := 0; i < 10; i++ {
		l.Send(packet.NewData(1, uint32(i), 512, 0))
	}
	eng.RunAll()
	if c.Packets() != 10 {
		t.Fatalf("captured %d packets, want 10", c.Packets())
	}
	if sink.Packets != 10 {
		t.Fatal("capture hook interfered with forwarding")
	}
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
}

type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	f.n++
	if f.n > 1 { // let the global header through
		return 0, bytes.ErrTooLarge
	}
	return len(p), nil
}

func TestCapturerWriteErrorLatches(t *testing.T) {
	eng := sim.NewEngine()
	c, err := NewCapturer(eng, &failWriter{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.Record(packet.NewSche(1, 0, 0, 0))
	if c.Err() == nil {
		t.Fatal("write error not latched")
	}
	before := c.Packets()
	c.Record(packet.NewSche(1, 1, 0, 0))
	if c.Packets() != before {
		t.Fatal("recording continued after error")
	}
}
