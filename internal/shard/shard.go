// Package shard runs one simulation across multiple cores under classic
// conservative (YAWNS-style) synchronization. The topology is partitioned
// into islands, each with its own sim.Engine and clock; the runner repeats
// fork-join rounds bounded by a global horizon derived from the lookahead —
// the minimum inter-partition link propagation delay — so no partition can
// ever receive a packet "from the past". Between rounds, cross-partition
// packets collected in per-partition mailboxes are merged and scheduled
// onto their destination engines in a fixed order, and control-plane events
// run serially while every partition is quiescent at the barrier.
//
// Determinism contract. Cross-shard delivery order is a pure function of
// (arrival sim time, source partition ID, capture sequence number): the
// flush walks source partitions in ascending ID, each mailbox sorted by
// (time, sequence), and the destination engine's schedule-order tie-break
// preserves exactly that order among equal-time arrivals. Local events at a
// given timestamp always precede cross-shard arrivals at the same
// timestamp (arrivals land after the barrier). None of this depends on the
// worker count or on GOMAXPROCS — a round executes the same partition
// engines to the same horizon whatever the parallelism — so a run with 1
// worker is byte-identical to a run with N.
//
// Memory discipline. Mailboxes are pooled: each partition appends captures
// to a reusable slice it alone writes during a round, and the flush resets
// lengths without freeing, so steady-state cross-shard handoff performs no
// allocation. The fork-join barrier (WaitGroup + channel-free join) is the
// only synchronization; partition state needs no locks because each
// partition is owned by exactly one goroutine per round and the join gives
// the coordinator happens-before over everything the round wrote.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

// xfer is one captured cross-partition packet awaiting the barrier.
type xfer struct {
	at  sim.Time
	seq uint64
	pt  *portal
	pkt *packet.Packet
}

// outbox is one partition's mailbox of outbound captures. Only that
// partition's goroutine appends during a round; only the coordinator reads
// and resets it at the barrier.
type outbox struct {
	xs  []xfer
	seq uint64
}

// deferred is a callback captured on a partition during a round, replayed
// on the control engine at the barrier in (time, partition, sequence)
// order. Flow-completion hooks use it so user callbacks and FCT recording
// run single-threaded in a reproducible order.
type deferred struct {
	at  sim.Time
	seq uint64
	fn  func()
}

// portal is the receiving end of one cross-partition cut: it implements
// netem.Remote for a specific (source partition, destination engine,
// destination node) triple. The deliver ArgFunc is built once so the flush
// schedules without per-packet closures.
type portal struct {
	r       *Runner
	src     int
	dst     *sim.Engine
	deliver sim.ArgFunc
}

// Carry implements netem.Remote: record the packet in the source
// partition's mailbox. Runs on the source partition's goroutine.
func (p *portal) Carry(pk *packet.Packet, at sim.Time) {
	ob := &p.r.out[p.src]
	ob.xs = append(ob.xs, xfer{at: at, seq: ob.seq, pt: p, pkt: pk})
	ob.seq++
}

// Stats counts the runner's work, for telemetry and tests. All fields are
// pure functions of the simulation inputs (never of worker count).
type Stats struct {
	// Rounds is how many barrier-bounded rounds have run.
	Rounds uint64
	// Carried is how many packets crossed a partition boundary.
	Carried uint64
	// Deferred is how many barrier callbacks were replayed.
	Deferred uint64
}

// Runner drives a set of partition engines plus one control engine in
// conservative rounds.
type Runner struct {
	ctl     *sim.Engine
	parts   []*sim.Engine
	byEng   map[*sim.Engine]int
	look    sim.Duration
	workers int

	out   []outbox
	defs  [][]deferred
	dseq  []uint64
	merge []deferred // reusable barrier merge buffer
	stats Stats
}

// New builds a runner over the given partition engines. lookahead must be
// strictly positive (conservative synchronization cannot make progress
// otherwise); workers is clamped to [1, len(parts)].
func New(ctl *sim.Engine, parts []*sim.Engine, lookahead sim.Duration, workers int) (*Runner, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("shard: no partitions")
	}
	if lookahead <= 0 {
		return nil, fmt.Errorf("shard: non-positive lookahead %v", lookahead)
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(parts) {
		workers = len(parts)
	}
	r := &Runner{
		ctl:     ctl,
		parts:   parts,
		byEng:   make(map[*sim.Engine]int, len(parts)),
		look:    lookahead,
		workers: workers,
		out:     make([]outbox, len(parts)),
		defs:    make([][]deferred, len(parts)),
		dseq:    make([]uint64, len(parts)),
	}
	for i, e := range parts {
		if e == ctl {
			return nil, fmt.Errorf("shard: partition %d reuses the control engine", i)
		}
		if _, dup := r.byEng[e]; dup {
			return nil, fmt.Errorf("shard: partition %d reuses another partition's engine", i)
		}
		r.byEng[e] = i
	}
	return r, nil
}

// Lookahead returns the synchronization window in force.
func (r *Runner) Lookahead() sim.Duration { return r.look }

// Workers returns the effective worker count.
func (r *Runner) Workers() int { return r.workers }

// Stats returns the runner's cumulative work counters.
func (r *Runner) Stats() Stats { return r.stats }

// Portal builds the netem.Remote endpoint for a link draining on srcEng
// whose destination node runs on dstEng. Both engines must be partition
// engines registered with this runner.
func (r *Runner) Portal(srcEng, dstEng *sim.Engine, dst netem.Node) netem.Remote {
	src, ok := r.byEng[srcEng]
	if !ok {
		panic("shard: Portal source engine is not a registered partition")
	}
	if _, ok := r.byEng[dstEng]; !ok {
		panic("shard: Portal destination engine is not a registered partition")
	}
	return &portal{
		r:       r,
		src:     src,
		dst:     dstEng,
		deliver: func(arg any) { dst.Receive(arg.(*packet.Packet)) },
	}
}

// DeferPart records fn, stamped with partition part's current clock, for
// replay on the control engine at the next barrier. Callbacks replay in
// (time, partition, sequence) order, so their effects are independent of
// worker interleaving. Call only from the owning partition's goroutine
// during a round (or from the coordinator between rounds).
func (r *Runner) DeferPart(part int, fn func()) {
	d := &r.defs[part]
	*d = append(*d, deferred{at: r.parts[part].Now(), seq: r.dseq[part], fn: fn})
	r.dseq[part]++
}

// Run advances the whole sharded simulation to the absolute time until,
// leaving every partition clock and the control clock at until (or at the
// last event when the system drains completely before it — matching
// Engine.Run's clock semantics per engine).
func (r *Runner) Run(until sim.Time) {
	for {
		var nextT sim.Time
		haveT := false
		for _, e := range r.parts {
			if t, ok := e.NextEventAt(); ok && (!haveT || t < nextT) {
				nextT, haveT = t, true
			}
		}
		nextC, haveC := r.ctl.NextEventAt()
		if (!haveT || nextT > until) && (!haveC || nextC > until) {
			// Nothing left inside the horizon: bring every clock to it.
			for _, e := range r.parts {
				if e.Now() < until {
					e.AdvanceTo(until)
				}
			}
			if r.ctl.Now() < until {
				r.ctl.AdvanceTo(until)
			}
			return
		}
		// The round horizon: the earliest partition event plus lookahead
		// (no cross-shard packet captured this round can arrive before
		// it), capped by the next control event so barrier-time actions
		// always execute with every partition clock exactly at their
		// timestamp, and by the caller's horizon.
		horizon := until
		if haveT {
			if h := nextT.Add(r.look); h >= nextT && h < horizon {
				horizon = h
			}
		}
		if haveC && nextC < horizon {
			horizon = nextC
		}
		r.round(horizon)
		r.flush()
		for _, e := range r.parts {
			if e.Now() < horizon {
				e.AdvanceTo(horizon)
			}
		}
		r.ctl.Run(horizon)
		if r.ctl.Now() < horizon {
			r.ctl.AdvanceTo(horizon)
		}
		r.stats.Rounds++
	}
}

// round runs every partition engine to the horizon. With one worker the
// coordinator runs them inline; otherwise workers claim partitions off an
// atomic counter and the WaitGroup join is the barrier that publishes all
// partition writes (mailboxes, deferred callbacks, engine state) back to
// the coordinator before flush reads them.
func (r *Runner) round(horizon sim.Time) {
	if r.workers <= 1 {
		for _, e := range r.parts {
			e.Run(horizon)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < r.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(r.parts) {
					return
				}
				r.parts[i].Run(horizon)
			}
		}()
	}
	wg.Wait()
}

// flush drains every mailbox into the destination engines and replays
// deferred callbacks onto the control engine, both in their contractual
// orders. Runs on the coordinator, after the round's join.
func (r *Runner) flush() {
	for src := range r.out {
		ob := &r.out[src]
		sortXfers(ob.xs)
		for i := range ob.xs {
			x := &ob.xs[i]
			x.pt.dst.ScheduleArgAt(x.at, x.pt.deliver, x.pkt)
			x.pkt = nil
			r.stats.Carried++
		}
		ob.xs = ob.xs[:0]
	}
	n := 0
	for _, ds := range r.defs {
		n += len(ds)
	}
	if n == 0 {
		return
	}
	r.merge = r.merge[:0]
	for _, ds := range r.defs {
		// Within a partition the deferred list is already in (time, seq)
		// order — callbacks are recorded as its clock advances — so the
		// cross-partition merge only needs a stable sort by time; ties
		// keep ascending (partition, seq) order by stability.
		r.merge = append(r.merge, ds...)
	}
	sortDeferred(r.merge)
	for i := range r.merge {
		d := &r.merge[i]
		r.ctl.ScheduleAt(d.at, d.fn)
		d.fn = nil
		r.stats.Deferred++
	}
	for i := range r.defs {
		r.defs[i] = r.defs[i][:0]
	}
}

// sortXfers orders a mailbox by (arrival time, capture sequence) with a
// hand-rolled insertion sort: mailboxes are short and nearly sorted, and
// sort.Slice would allocate on a path that promises 0 allocs/op.
func sortXfers(xs []xfer) {
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && (xs[j].at > x.at || (xs[j].at == x.at && xs[j].seq > x.seq)) {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}

// sortDeferred stably orders the merged deferred list by timestamp;
// equal-time entries keep their (partition, sequence) append order.
func sortDeferred(ds []deferred) {
	for i := 1; i < len(ds); i++ {
		d := ds[i]
		j := i - 1
		for j >= 0 && ds[j].at > d.at {
			ds[j+1] = ds[j]
			j--
		}
		ds[j+1] = d
	}
}
