//go:build race

package shard

// raceEnabled reports that the race runtime is active; its shadow-memory
// bookkeeping allocates, so allocation-count assertions are skipped.
const raceEnabled = true
