package shard

import (
	"fmt"
	"reflect"
	"testing"

	"marlin/internal/netem"
	"marlin/internal/packet"
	"marlin/internal/sim"
)

func TestNewValidation(t *testing.T) {
	ctl := sim.NewEngine()
	a, b := sim.NewEngine(), sim.NewEngine()
	cases := []struct {
		name      string
		parts     []*sim.Engine
		lookahead sim.Duration
	}{
		{"no partitions", nil, sim.Microsecond},
		{"zero lookahead", []*sim.Engine{a}, 0},
		{"negative lookahead", []*sim.Engine{a}, -sim.Nanosecond},
		{"ctl as partition", []*sim.Engine{ctl}, sim.Microsecond},
		{"duplicate engine", []*sim.Engine{a, a}, sim.Microsecond},
	}
	for _, tc := range cases {
		if _, err := New(ctl, tc.parts, tc.lookahead, 2); err == nil {
			t.Errorf("%s: New accepted", tc.name)
		}
	}
	r, err := New(ctl, []*sim.Engine{a, b}, sim.Microsecond, 99)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if r.Workers() != 2 {
		t.Errorf("workers clamped to %d, want 2", r.Workers())
	}
	if r.Lookahead() != sim.Microsecond {
		t.Errorf("lookahead = %v", r.Lookahead())
	}
}

func TestPortalRejectsForeignEngines(t *testing.T) {
	ctl := sim.NewEngine()
	a, b := sim.NewEngine(), sim.NewEngine()
	r, err := New(ctl, []*sim.Engine{a, b}, sim.Microsecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Portal accepted an unregistered source engine")
		}
	}()
	r.Portal(sim.NewEngine(), b, &netem.Sink{})
}

// recorder logs every delivery with its arrival clock. One recorder lives
// per destination partition, written only by that partition's engine.
type recorder struct {
	eng *sim.Engine
	log []string
}

func (rc *recorder) Receive(p *packet.Packet) {
	rc.log = append(rc.log, fmt.Sprintf("t=%v flow=%d psn=%d", rc.eng.Now(), p.Flow, p.PSN))
	p.Release()
}

// crossTraffic builds a 3-partition system where every partition streams
// packets to its neighbor (including same-timestamp collisions from two
// sources into one destination) and defers barrier callbacks, then runs it
// with the given worker count and returns every observable ordering.
func crossTraffic(t *testing.T, workers int) (perPart [][]string, ctlLog []string, st Stats) {
	t.Helper()
	const parts = 3
	const look = sim.Microsecond
	ctl := sim.NewEngine()
	engs := make([]*sim.Engine, parts)
	recs := make([]*recorder, parts)
	for i := range engs {
		engs[i] = sim.NewEngine()
		recs[i] = &recorder{eng: engs[i]}
	}
	r, err := New(ctl, engs, look, workers)
	if err != nil {
		t.Fatal(err)
	}
	// portals[src][dst]
	portals := make([][]netem.Remote, parts)
	for s := 0; s < parts; s++ {
		portals[s] = make([]netem.Remote, parts)
		for d := 0; d < parts; d++ {
			if s != d {
				portals[s][d] = r.Portal(engs[s], engs[d], recs[d])
			}
		}
	}
	for i := 0; i < parts; i++ {
		i := i
		eng := engs[i]
		for j := 0; j < 40; j++ {
			j := j
			// Staggered source times; arrival offsets chosen so distinct
			// sources regularly collide on the same arrival timestamp at
			// the same destination — the tie the (src, seq) rule breaks.
			at := sim.Duration(100+50*j) * sim.Nanosecond
			eng.Schedule(at, func() {
				dst := (i + 1) % parts
				arrive := eng.Now().Add(look + sim.Duration(j%2)*sim.Microsecond)
				portals[i][dst].Carry(packet.NewData(packet.FlowID(i*1000+j), uint32(j), 64, 0), arrive)
				if j%5 == 0 {
					r.DeferPart(i, func() {
						ctlLog = append(ctlLog, fmt.Sprintf("defer t=%v part=%d j=%d", ctl.Now(), i, j))
					})
				}
			})
		}
	}
	r.Run(sim.Time(50 * sim.Microsecond))
	for _, e := range append([]*sim.Engine{ctl}, engs...) {
		if e.Now() != sim.Time(50*sim.Microsecond) {
			t.Errorf("workers=%d: clock left at %v, want 50us", workers, e.Now())
		}
	}
	for _, rc := range recs {
		perPart = append(perPart, rc.log)
	}
	return perPart, ctlLog, r.Stats()
}

// TestDeterministicAcrossWorkers is the runner's core contract: every
// observable ordering — per-partition arrival logs, barrier callback
// replay, work counters — is identical whatever the worker count.
func TestDeterministicAcrossWorkers(t *testing.T) {
	basePer, baseCtl, baseStats := crossTraffic(t, 1)
	if baseStats.Carried != 120 {
		t.Fatalf("Carried = %d, want 120", baseStats.Carried)
	}
	if baseStats.Deferred != 24 {
		t.Fatalf("Deferred = %d, want 24", baseStats.Deferred)
	}
	if len(baseCtl) != 24 {
		t.Fatalf("ctl log has %d entries, want 24", len(baseCtl))
	}
	for _, workers := range []int{2, 3} {
		per, ctlLog, st := crossTraffic(t, workers)
		if !reflect.DeepEqual(per, basePer) {
			t.Errorf("workers=%d: delivery order differs from workers=1", workers)
		}
		if !reflect.DeepEqual(ctlLog, baseCtl) {
			t.Errorf("workers=%d: deferred replay order differs from workers=1", workers)
		}
		if st != baseStats {
			t.Errorf("workers=%d: stats %+v, want %+v", workers, st, baseStats)
		}
	}
}

// TestTieBreakOrder pins the contractual delivery order for equal-time
// arrivals: ascending source partition, then capture sequence.
func TestTieBreakOrder(t *testing.T) {
	ctl := sim.NewEngine()
	a, b, c := sim.NewEngine(), sim.NewEngine(), sim.NewEngine()
	rec := &recorder{eng: c}
	r, err := New(ctl, []*sim.Engine{a, b, c}, sim.Microsecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	pa := r.Portal(a, c, rec)
	pb := r.Portal(b, c, rec)
	arrive := sim.Time(3 * sim.Microsecond)
	// Partition 1 captures first in host order; partition 0 must still
	// deliver first, and within a partition capture order holds.
	b.Schedule(100*sim.Nanosecond, func() {
		pb.Carry(packet.NewData(20, 0, 64, 0), arrive)
		pb.Carry(packet.NewData(21, 0, 64, 0), arrive)
	})
	a.Schedule(200*sim.Nanosecond, func() {
		pa.Carry(packet.NewData(10, 0, 64, 0), arrive)
		pa.Carry(packet.NewData(11, 0, 64, 0), arrive)
	})
	r.Run(sim.Time(10 * sim.Microsecond))
	want := []string{
		"t=3us flow=10 psn=0",
		"t=3us flow=11 psn=0",
		"t=3us flow=20 psn=0",
		"t=3us flow=21 psn=0",
	}
	if !reflect.DeepEqual(rec.log, want) {
		t.Errorf("delivery order:\n got %v\nwant %v", rec.log, want)
	}
}

// TestRunIdleAdvancesClocks covers the drained case: no pending events
// anywhere still brings every clock to the horizon.
func TestRunIdleAdvancesClocks(t *testing.T) {
	ctl := sim.NewEngine()
	a, b := sim.NewEngine(), sim.NewEngine()
	r, err := New(ctl, []*sim.Engine{a, b}, sim.Microsecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	r.Run(sim.Time(7 * sim.Microsecond))
	for _, e := range []*sim.Engine{ctl, a, b} {
		if e.Now() != sim.Time(7*sim.Microsecond) {
			t.Errorf("clock at %v, want 7us", e.Now())
		}
	}
	if r.Stats().Rounds != 0 {
		t.Errorf("idle run counted %d rounds", r.Stats().Rounds)
	}
}

// TestControlEventBarrier verifies a control-engine event executes with
// every partition clock exactly at its timestamp — the horizon is capped at
// the next control event.
func TestControlEventBarrier(t *testing.T) {
	ctl := sim.NewEngine()
	a, b := sim.NewEngine(), sim.NewEngine()
	r, err := New(ctl, []*sim.Engine{a, b}, 100*sim.Microsecond, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Keep both partitions busy with a fine-grained event chain so their
	// clocks would race far past the control event under the big lookahead
	// if the cap were missing.
	for _, e := range []*sim.Engine{a, b} {
		e := e
		var tick sim.Func
		tick = func() { e.Schedule(500*sim.Nanosecond, tick) }
		e.Schedule(500*sim.Nanosecond, tick)
	}
	var atCtl [2]sim.Time
	ctl.Schedule(5*sim.Microsecond, func() {
		atCtl[0], atCtl[1] = a.Now(), b.Now()
	})
	r.Run(sim.Time(20 * sim.Microsecond))
	for i, got := range atCtl {
		if got != sim.Time(5*sim.Microsecond) {
			t.Errorf("partition %d clock at control event: %v, want 5us", i, got)
		}
	}
}

// warmWheel touches every timer-wheel slot of e (two events per slot over
// one full wheel window) so steady-state allocation asserts don't count the
// engine's one-time, lazily-grown slot slices.
func warmWheel(e *sim.Engine) {
	noop := func() {}
	for i := 0; i < 2*4096; i++ {
		e.Schedule(sim.Duration(i)*4096*sim.Picosecond, noop)
	}
}

// TestHandoffAllocs is the memory-discipline gate: after warm-up, a steady
// cross-partition packet stream completes rounds without allocating —
// mailboxes, merge buffers, and event slots are all reused.
func TestHandoffAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime allocates; allocation counts are meaningless")
	}
	ctl := sim.NewEngine()
	a, b := sim.NewEngine(), sim.NewEngine()
	r, err := New(ctl, []*sim.Engine{a, b}, sim.Microsecond, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range []*sim.Engine{ctl, a, b} {
		warmWheel(e)
	}
	p := r.Portal(a, b, &countingSink{})
	var tick sim.Func
	tick = func() {
		p.Carry(packet.NewData(1, 0, 64, 0), a.Now().Add(2*sim.Microsecond))
		a.Schedule(sim.Microsecond, tick)
	}
	a.Schedule(sim.Microsecond, tick)
	end := sim.Time(100 * sim.Microsecond)
	step := sim.Duration(100 * sim.Microsecond)
	// Drain the wheel warm-up and fill the packet pool and mailboxes.
	r.Run(end)
	allocs := testing.AllocsPerRun(10, func() {
		end = end.Add(step)
		r.Run(end)
	})
	if allocs > 0 {
		t.Errorf("steady-state handoff allocates %.1f allocs per 100us window, want 0", allocs)
	}
}

// countingSink releases deliveries without logging (no append growth).
type countingSink struct{ n int }

func (c *countingSink) Receive(p *packet.Packet) {
	c.n++
	p.Release()
}

// BenchmarkHandoff measures one steady-state cross-partition packet
// transfer end to end: capture, barrier merge, scheduled delivery.
func BenchmarkHandoff(b *testing.B) {
	ctl := sim.NewEngine()
	pa, pb := sim.NewEngine(), sim.NewEngine()
	r, err := New(ctl, []*sim.Engine{pa, pb}, sim.Microsecond, 1)
	if err != nil {
		b.Fatal(err)
	}
	port := r.Portal(pa, pb, &countingSink{})
	var tick sim.Func
	tick = func() {
		port.Carry(packet.NewData(1, 0, 64, 0), pa.Now().Add(2*sim.Microsecond))
		pa.Schedule(sim.Microsecond, tick)
	}
	pa.Schedule(sim.Microsecond, tick)
	end := sim.Time(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		end = end.Add(sim.Microsecond)
		r.Run(end)
	}
}
