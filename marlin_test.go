package marlin_test

import (
	"bytes"
	"runtime"
	"strings"
	"testing"

	"marlin"
)

func TestAlgorithmsListed(t *testing.T) {
	algos := marlin.Algorithms()
	want := map[string]bool{"reno": true, "dctcp": true, "dcqcn": true, "cubic": true, "timely": true}
	for _, a := range algos {
		delete(want, a)
	}
	if len(want) != 0 {
		t.Fatalf("missing algorithms: %v (have %v)", want, algos)
	}
}

func TestValidateRejectsBadConfig(t *testing.T) {
	if err := marlin.Validate(marlin.TestConfig{}); err == nil {
		t.Fatal("empty config validated")
	}
	if err := marlin.Validate(marlin.TestConfig{Algorithm: "dctcp"}); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
}

func TestTesterEndToEnd(t *testing.T) {
	tr, err := marlin.NewTester(marlin.TestConfig{Algorithm: "dctcp", Ports: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.DataPorts() != 2 {
		t.Fatalf("DataPorts = %d", tr.DataPorts())
	}
	if tr.PlannedThroughput() != 200*marlin.Gbps {
		t.Fatalf("planned throughput = %v", tr.PlannedThroughput())
	}
	if err := tr.StartFlow(0, 0, 1, 200); err != nil {
		t.Fatal(err)
	}
	tr.RunFor(20 * marlin.Millisecond)
	if got := len(tr.FCTs()); got != 1 {
		t.Fatalf("FCTs = %d, want 1", got)
	}
	rec := tr.FCTs()[0]
	if rec.SizePkts != 200 || rec.FCT <= 0 {
		t.Fatalf("record = %+v", rec)
	}
	snap := tr.Registers()
	if snap.Switch.DataTx < 200 {
		t.Fatalf("snapshot DataTx = %d", snap.Switch.DataTx)
	}
	if !strings.Contains(marlin.FormatSnapshot(snap), "data_tx=") {
		t.Fatal("FormatSnapshot missing fields")
	}
	if losses := tr.Losses(); losses.FalseLosses != 0 {
		t.Fatalf("false losses: %+v", losses)
	}
	if trace := tr.FlowTrace(0); len(trace) == 0 {
		t.Fatal("no trace")
	}
}

func TestInjectLossAndECN(t *testing.T) {
	tr, err := marlin.NewTester(marlin.TestConfig{Algorithm: "dctcp", Ports: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr.InjectLoss(1, 0, 50)
	tr.InjectECN(1, 0, 120, 160)
	if err := tr.StartFlow(0, 0, 1, 400); err != nil {
		t.Fatal(err)
	}
	tr.RunFor(50 * marlin.Millisecond)
	if len(tr.FCTs()) != 1 {
		t.Fatal("flow did not survive the injected events")
	}
	snap := tr.Registers()
	if snap.NIC.RtxTx == 0 {
		t.Fatal("injected loss produced no retransmission")
	}
	// The ECN burst must appear in the trace as a cwnd reduction.
	var sawCut bool
	trace := tr.FlowTrace(0)
	for i := 1; i < len(trace); i++ {
		if trace[i].A < trace[i-1].A && trace[i].B > 0 {
			sawCut = true
			break
		}
	}
	if !sawCut {
		t.Fatal("ECN injection produced no alpha-driven window cut")
	}
}

func TestScheduledScript(t *testing.T) {
	tr, err := marlin.NewTester(marlin.TestConfig{Algorithm: "dctcp", Ports: 3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.StartFlow(0, 0, 2, 0); err != nil {
		t.Fatal(err)
	}
	tr.Schedule(1*marlin.Millisecond, func() {
		if err := tr.StartFlow(1, 1, 2, 0); err != nil {
			t.Error(err)
		}
	})
	tr.Schedule(2*marlin.Millisecond, func() { tr.StopFlow(0) })
	tr.RunFor(3 * marlin.Millisecond)
	if tr.FlowTxBytes(1) == 0 {
		t.Fatal("scheduled flow never ran")
	}
	if tr.Now() != marlin.Time(3*marlin.Millisecond) {
		t.Fatalf("Now = %v", tr.Now())
	}
}

// stopAndGo is a minimal custom module used to prove external
// registration works end to end (requirement R2).
type stopAndGo struct{}

func (stopAndGo) Name() string        { return "stopandgo" }
func (stopAndGo) Mode() marlin.CCMode { return marlin.WindowMode }
func (stopAndGo) FastPathCycles() int { return 1 }
func (stopAndGo) SlowPathCycles() int { return 0 }
func (stopAndGo) InitFlow(cust, slow *marlin.CCState, p *marlin.CCParams) {
	marlin.RegsOf(cust).SetU32(0, 4)
}
func (stopAndGo) OnEvent(in *marlin.CCInput, out *marlin.CCOutput) {
	out.SetCwnd, out.Cwnd = true, marlin.RegsOf(in.Cust).U32(0)
	out.Schedule = true
}
func (stopAndGo) OnSlowPath(code uint8, cust, slow *marlin.CCState, in *marlin.CCInput, out *marlin.CCOutput) {
}

func TestCustomCCRegistration(t *testing.T) {
	marlin.RegisterCC("stopandgo", func() marlin.CCAlgorithm { return stopAndGo{} })
	tr, err := marlin.NewTester(marlin.TestConfig{Algorithm: "stopandgo", Ports: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.StartFlow(0, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	tr.RunFor(100 * marlin.Microsecond)
	if tr.FlowTxBytes(0) == 0 {
		t.Fatal("custom module generated no traffic")
	}
	// Fixed window of 4: inflight never exceeds 4 packets, so the rate
	// is window-limited to ~4 packets per RTT.
	snap := tr.Registers()
	if snap.Switch.DataTx == 0 || snap.NIC.EventsHandled == 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func TestWorkloadHelpers(t *testing.T) {
	rng := marlin.NewRand(1)
	ws := marlin.WebSearch()
	for i := 0; i < 100; i++ {
		if s := ws.Sample(rng); s < 1 || s > 20000 {
			t.Fatalf("websearch sample %d", s)
		}
	}
	if marlin.FixedSize(7).Sample(rng) != 7 {
		t.Fatal("FixedSize broken")
	}
	u := marlin.UniformSize(3, 9)
	for i := 0; i < 100; i++ {
		if s := u.Sample(rng); s < 3 || s > 9 {
			t.Fatalf("uniform sample %d", s)
		}
	}
	cdf := marlin.NewCDF([]float64{1, 2, 3, 4})
	if cdf.Percentile(0.5) != 2 {
		t.Fatal("CDF percentile")
	}
	if j := marlin.JainIndex([]float64{5, 5}); j != 1 {
		t.Fatalf("Jain = %v", j)
	}
}

func TestExperimentRegistryExposed(t *testing.T) {
	if len(marlin.Experiments()) < 14 {
		t.Fatalf("experiments = %v", marlin.Experiments())
	}
	if marlin.DescribeExperiment("fig7") == "" {
		t.Fatal("fig7 undescribed")
	}
	res, err := marlin.RunExperiment("table-amplify", marlin.ExperimentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics["tbps_1024"] != 1.2 {
		t.Fatalf("amplification table wrong: %v", res.Metrics["tbps_1024"])
	}
}

func TestRTTSamplingAndCapture(t *testing.T) {
	tr, err := marlin.NewTester(marlin.TestConfig{Algorithm: "dctcp", Ports: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var fwd, dev bytes.Buffer
	if _, err := tr.CaptureForward(1, &fwd, 0); err != nil {
		t.Fatal(err)
	}
	devCap, err := tr.CaptureDeviceLinks(&dev, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.StartFlow(0, 0, 1, 200); err != nil {
		t.Fatal(err)
	}
	tr.RunFor(10 * marlin.Millisecond)

	samples, count, ewma := tr.RTT()
	if count < 100 || len(samples) < 100 {
		t.Fatalf("rtt probes: count=%d samples=%d", count, len(samples))
	}
	// Base path: ~8.6us of delays plus serialization; EWMA must land in
	// a plausible band.
	if ewma < 5 || ewma > 50 {
		t.Fatalf("rtt ewma = %v us, implausible", ewma)
	}
	if devCap.Packets() < 300 { // ~200 SCHE + ~200 INFO
		t.Fatalf("device capture saw %d packets", devCap.Packets())
	}
	if fwd.Len() <= 24 || dev.Len() <= 24 {
		t.Fatal("capture files empty beyond the header")
	}
}

func TestCBRIgnoresCongestion(t *testing.T) {
	// Two CBR flows at line rate into one port: no backoff, so the
	// shallow queue drops heavily — the behaviour a CC-unaware tester
	// (R1 unmet) would inflict on the network under test.
	tr, err := marlin.NewTester(marlin.TestConfig{
		Algorithm:        "cbr",
		Ports:            3,
		ECNThresholdPkts: 65,
		Seed:             6,
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.StartFlow(0, 0, 2, 0)
	tr.StartFlow(1, 1, 2, 0)
	tr.RunFor(2 * marlin.Millisecond)
	if drops := tr.Losses().NetworkDrops; drops == 0 {
		t.Fatal("CBR overload produced no drops (congestion reaction leaked in)")
	}
}

func TestRunScenarioPublicAPI(t *testing.T) {
	rep, err := marlin.RunScenario(`
set algo dctcp
set ports 2
at 0ms start 0 tx 0 rx 1 size 50
run 5ms
expect completions == 1
expect false_losses == 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Passed() {
		t.Fatalf("scenario failed:\n%s", rep.Summary())
	}
	if _, err := marlin.RunScenario("nonsense"); err == nil {
		t.Fatal("bad scenario parsed")
	}
}

// TestAQMSpecConstructors checks the functional-option surface renders
// specs ParseAQMSpec accepts, with overrides applied.
func TestAQMSpecConstructors(t *testing.T) {
	s := marlin.AQMDualPI2(
		marlin.AQMTarget(10*marlin.Microsecond),
		marlin.AQMTUpdate(50*marlin.Microsecond),
		marlin.AQMGains(250, 2500),
		marlin.AQMCoupling(4),
		marlin.AQMStep(20*marlin.Microsecond),
		marlin.AQMShift(20*marlin.Microsecond),
	)
	back, err := marlin.ParseAQMSpec(s.String())
	if err != nil {
		t.Fatalf("constructor output %q does not re-parse: %v", s.String(), err)
	}
	if back != s {
		t.Fatalf("round trip drifted: %+v vs %+v", back, s)
	}
	if back.Target != 10*marlin.Microsecond || back.Coupling != 4 || back.Alpha != 250 {
		t.Fatalf("options not applied: %+v", back)
	}
	for _, s := range []marlin.AQMSpec{
		marlin.AQMRed(marlin.AQMThresholds(30000, 90000), marlin.AQMMaxP(0.05)),
		marlin.AQMPIE(), marlin.AQMCoDel(marlin.AQMInterval(marlin.Millisecond)), marlin.AQMPI2(),
	} {
		if _, err := marlin.ParseAQMSpec(s.String()); err != nil {
			t.Errorf("%q does not re-parse: %v", s.String(), err)
		}
	}
}

// TestAQMMixedCCEndToEnd drives the public AQM path: a DualPI2 spec built
// from options, a per-flow CUBIC override sharing the port with DCTCP, and
// the per-band telemetry split.
func TestAQMMixedCCEndToEnd(t *testing.T) {
	tr, err := marlin.NewTester(marlin.TestConfig{
		Algorithm: "dctcp",
		Ports:     3,
		AQM: marlin.AQMDualPI2(
			marlin.AQMTarget(5*marlin.Microsecond),
			marlin.AQMTUpdate(25*marlin.Microsecond),
			marlin.AQMGains(250, 2500),
			marlin.AQMStep(10*marlin.Microsecond),
			marlin.AQMShift(10*marlin.Microsecond),
		).String(),
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.StartFlow(0, 0, 2, 0); err != nil {
		t.Fatal(err)
	}
	if err := tr.StartFlowCC(1, 1, 2, 0, "cubic"); err != nil {
		t.Fatal(err)
	}
	// A rate-mode override on a window-mode deployment must be refused.
	if err := tr.StartFlowCC(2, 0, 2, 0, "dcqcn"); err == nil {
		t.Fatal("cross-mode CC override accepted")
	}
	tr.RunFor(2 * marlin.Millisecond)
	ps := tr.NetworkTelemetry()[0].Ports[2]
	if ps.AQM == nil || ps.AQM.Discipline != "dualpi2" {
		t.Fatalf("no discipline on the victim port: %+v", ps.AQM)
	}
	// DCTCP rides the L4S band, the CUBIC override the classic band.
	if ps.AQM.BandDeqPackets[0] == 0 || ps.AQM.BandDeqPackets[1] == 0 {
		t.Fatalf("bands not split by codepoint: %+v", ps.AQM.BandDeqPackets)
	}
	if ps.AQM.Marks == 0 {
		t.Fatal("congested DualPI2 port never marked")
	}
}

// TestAQMDifferentialWorkers is the determinism gate for the probabilistic
// disciplines: the same cc × AQM campaign must produce byte-identical
// marks, drops, and sojourn percentiles at -j 1 vs -j N and across two
// GOMAXPROCS settings, because every queue draws from its own pre-split
// RNG stream.
func TestAQMDifferentialWorkers(t *testing.T) {
	cells := []string{
		"red:min=30000,max=90000",
		"pie:target=10us,tupdate=50us,alpha=250,beta=2500",
		"dualpi2:target=10us,tupdate=50us,step=20us,shift=20us,alpha=250,beta=2500",
	}
	campaign := func(workers int) []marlin.FleetJobResult {
		t.Helper()
		jobs := make([]marlin.FleetJob, len(cells))
		for i, spec := range cells {
			spec := spec
			jobs[i] = marlin.FleetJob{ID: spec, Run: func() (*marlin.FleetOutput, error) {
				tester, err := marlin.NewTester(marlin.TestConfig{
					Algorithm: "dctcp", Ports: 3, AQM: spec, Seed: 23,
				})
				if err != nil {
					return nil, err
				}
				if err := tester.StartFlow(0, 0, 2, 0); err != nil {
					return nil, err
				}
				if err := tester.StartFlowCC(1, 1, 2, 0, "cubic"); err != nil {
					return nil, err
				}
				tester.RunFor(2 * marlin.Millisecond)
				ps := tester.NetworkTelemetry()[0].Ports[2]
				return &marlin.FleetOutput{Metrics: map[string]float64{
					"marks":       float64(ps.AQM.Marks),
					"drops":       float64(ps.AQM.Drops),
					"classic_p99": ps.AQM.SojournP99Us[0],
					"l4s_p99":     ps.AQM.SojournP99Us[1],
					"tx":          float64(ps.TxPackets),
				}}, nil
			}}
		}
		results, err := marlin.RunFleet(jobs, marlin.FleetOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}

	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	baseline := campaign(1)
	for _, procs := range []int{1, prev} {
		runtime.GOMAXPROCS(procs)
		for _, workers := range []int{1, 4} {
			got := campaign(workers)
			for i := range baseline {
				if !baseline[i].OK() || !got[i].OK() {
					t.Fatalf("cell %s failed: %q / %q", cells[i], baseline[i].Err, got[i].Err)
				}
				want, have := baseline[i].Output.Metrics, got[i].Output.Metrics
				for k, v := range want {
					if have[k] != v {
						t.Errorf("GOMAXPROCS=%d workers=%d cell %s: %s = %g, want %g",
							procs, workers, cells[i], k, have[k], v)
					}
				}
				if want["marks"] == 0 {
					t.Errorf("cell %s never marked; differential test is vacuous", cells[i])
				}
			}
		}
	}
}

// TestFleetPublicAPI drives a small campaign of real testers through the
// public fleet surface: parallel execution, derived seeds, in-order
// results, and CDF merging across replicates.
func TestFleetPublicAPI(t *testing.T) {
	campaign := func(workers int) []marlin.FleetJobResult {
		t.Helper()
		jobs := make([]marlin.FleetJob, 3)
		for i := range jobs {
			id := []string{"rep0", "rep1", "rep2"}[i]
			seed := marlin.DeriveSeed(42, id)
			jobs[i] = marlin.FleetJob{ID: id, Run: func() (*marlin.FleetOutput, error) {
				tester, err := marlin.NewTester(marlin.TestConfig{
					Algorithm: "dctcp", Ports: 2, ECNThresholdPkts: 65, Seed: seed,
				})
				if err != nil {
					return nil, err
				}
				if err := tester.StartFlow(0, 0, 1, 50); err != nil {
					return nil, err
				}
				tester.RunFor(2 * marlin.Millisecond)
				return &marlin.FleetOutput{
					Metrics: map[string]float64{"tx_bytes": float64(tester.FlowTxBytes(0))},
					Samples: map[string][]float64{"fct_us": tester.FCTMicros()},
				}, nil
			}}
		}
		results, err := marlin.RunFleet(jobs, marlin.FleetOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return results
	}

	seq, par := campaign(1), campaign(4)
	var cdfs []marlin.CDF
	for i := range seq {
		if !seq[i].OK() || !par[i].OK() {
			t.Fatalf("job %d failed: %q / %q", i, seq[i].Err, par[i].Err)
		}
		if seq[i].ID != par[i].ID {
			t.Fatalf("result order differs: %s vs %s", seq[i].ID, par[i].ID)
		}
		a, b := seq[i].Output.Metrics["tx_bytes"], par[i].Output.Metrics["tx_bytes"]
		if a != b || a == 0 {
			t.Errorf("job %d: workers=4 metrics differ from workers=1: %g vs %g", i, b, a)
		}
		cdfs = append(cdfs, marlin.NewCDF(par[i].Output.Samples["fct_us"]))
	}
	merged := marlin.MergeCDFs(cdfs...)
	total := 0
	for _, c := range cdfs {
		total += c.Len()
	}
	if merged.Len() != total || total == 0 {
		t.Errorf("merged CDF has %d samples, want %d (> 0)", merged.Len(), total)
	}
}
