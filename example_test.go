package marlin_test

import (
	"fmt"
	"log"

	"marlin"
)

// The simplest complete use: deploy a tester, run one flow, read the
// registers.
func Example() {
	t, err := marlin.NewTester(marlin.TestConfig{Algorithm: "dctcp", Ports: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if err := t.StartFlow(0, 0, 1, 100); err != nil {
		log.Fatal(err)
	}
	t.RunFor(10 * marlin.Millisecond)
	fmt.Println("completions:", len(t.FCTs()))
	fmt.Println("false losses:", t.Losses().FalseLosses)
	// Output:
	// completions: 1
	// false losses: 0
}

// Scripted fault injection reproduces the paper's §7.1 methodology:
// deterministic loss at a chosen sequence number.
func ExampleTester_InjectLoss() {
	t, err := marlin.NewTester(marlin.TestConfig{Algorithm: "reno", Ports: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	t.InjectLoss(1, 0, 40) // drop flow 0's PSN 40 on its way to port 1
	if err := t.StartFlow(0, 0, 1, 200); err != nil {
		log.Fatal(err)
	}
	t.RunFor(20 * marlin.Millisecond)
	fmt.Println("completed:", len(t.FCTs()) == 1)
	fmt.Println("retransmitted:", t.Registers().NIC.RtxTx >= 1)
	// Output:
	// completed: true
	// retransmitted: true
}

// Scenario scripts express whole tests as text (see internal/scenario for
// the language).
func ExampleRunScenario() {
	rep, err := marlin.RunScenario(`
set algo dctcp
set ports 2
at 0ms start 0 tx 0 rx 1 size 50
run 5ms
expect completions == 1
expect false_losses == 0
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("passed:", rep.Passed())
	// Output:
	// passed: true
}

// Experiments regenerate the paper's tables and figures.
func ExampleRunExperiment() {
	res, err := marlin.RunExperiment("table-amplify", marlin.ExperimentOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MTU 1024 amplification: %.0fx -> %.1f Tbps\n",
		res.Metrics["amp_1024"], res.Metrics["tbps_1024"])
	// Output:
	// MTU 1024 amplification: 12x -> 1.2 Tbps
}
